package minlp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/rng"
)

func TestKnapsack(t *testing.T) {
	// max 10x1 + 13x2 + 7x3 s.t. 3x1 + 4x2 + 2x3 <= 6, x binary.
	// Best: x1=0, x2=1, x3=1 → 20 (weight 6). Alternative x1=1,x3=1 → 17.
	m := &MILP{
		LP: lp.Problem{
			NumVars:   3,
			Objective: []float64{-10, -13, -7},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{3, 4, 2}, Sense: lp.LE, RHS: 6},
			},
			Lo: []float64{0, 0, 0},
			Hi: []float64{1, 1, 1},
		},
		Integer: []int{0, 1, 2},
	}
	res, err := SolveMILP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-(-20)) > 1e-6 {
		t.Fatalf("objective = %v, want -20 (x=%v)", res.Objective, res.X)
	}
	want := []float64{0, 1, 1}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-9 {
			t.Fatalf("x = %v, want %v", res.X, want)
		}
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x s.t. x <= 3.7, x integer → x = 3.
	m := &MILP{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{-1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1}, Sense: lp.LE, RHS: 3.7},
			},
		},
		Integer: []int{0},
	}
	res, err := SolveMILP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 3 {
		t.Fatalf("x = %v, want 3", res.X[0])
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 10y, x continuous in [0, 2.5], y integer in [0, 10],
	// x + y <= 4.3 → y = 4, x = 0.3, obj -40.3.
	m := &MILP{
		LP: lp.Problem{
			NumVars:   2,
			Objective: []float64{-1, -10},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{1, 1}, Sense: lp.LE, RHS: 4.3},
			},
			Lo: []float64{0, 0},
			Hi: []float64{2.5, 10},
		},
		Integer: []int{1},
	}
	res, err := SolveMILP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-(-40.3)) > 1e-6 {
		t.Fatalf("objective = %v, want -40.3 (x=%v)", res.Objective, res.X)
	}
	if res.X[1] != 4 || math.Abs(res.X[0]-0.3) > 1e-6 {
		t.Fatalf("x = %v, want [0.3 4]", res.X)
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// 2x = 3 with x integer: LP feasible (x=1.5) but no integer point.
	m := &MILP{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{1},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{2}, Sense: lp.EQ, RHS: 3},
			},
			Lo: []float64{0},
			Hi: []float64{10},
		},
		Integer: []int{0},
	}
	res, err := SolveMILP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusInfeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnboundedMILP(t *testing.T) {
	m := &MILP{
		LP: lp.Problem{
			NumVars:   1,
			Objective: []float64{-1},
		},
		Integer: []int{0},
	}
	res, err := SolveMILP(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != StatusUnbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestNodeBudget(t *testing.T) {
	// A knapsack-ish instance with MaxNodes 1 cannot close the tree.
	m := &MILP{
		LP: lp.Problem{
			NumVars:   3,
			Objective: []float64{-10, -13, -7},
			Constraints: []lp.Constraint{
				{Coeffs: []float64{3, 4, 2}, Sense: lp.LE, RHS: 6},
			},
			Lo: []float64{0, 0, 0},
			Hi: []float64{1, 1, 1},
		},
		Integer: []int{0, 1, 2},
	}
	_, err := SolveMILP(m, Options{MaxNodes: 1})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestBadIntegerIndex(t *testing.T) {
	m := &MILP{
		LP:      lp.Problem{NumVars: 1, Objective: []float64{1}},
		Integer: []int{5},
	}
	if _, err := SolveMILP(m, Options{}); err == nil {
		t.Fatal("want error for out-of-range integer index")
	}
}

// TestBnBMatchesExhaustive cross-checks branch and bound against brute
// force on random small binary knapsacks.
func TestBnBMatchesExhaustive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(5) // up to 6 binaries
		values := make([]float64, n)
		weights := make([]float64, n)
		for i := range values {
			values[i] = 1 + 9*r.Float64()
			weights[i] = 1 + 4*r.Float64()
		}
		cap := 2 + 6*r.Float64()
		m := &MILP{
			LP: lp.Problem{
				NumVars:   n,
				Objective: make([]float64, n),
				Constraints: []lp.Constraint{
					{Coeffs: weights, Sense: lp.LE, RHS: cap},
				},
				Lo: make([]float64, n),
				Hi: make([]float64, n),
			},
			Integer: make([]int, n),
		}
		for i := 0; i < n; i++ {
			m.LP.Objective[i] = -values[i]
			m.LP.Hi[i] = 1
			m.Integer[i] = i
		}
		res, err := SolveMILP(m, Options{})
		if err != nil {
			return false
		}
		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			var w, v float64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					w += weights[i]
					v += values[i]
				}
			}
			if w <= cap && v > best {
				best = v
			}
		}
		return math.Abs(-res.Objective-best) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestGenericRelaxationHook exercises the relaxation-agnostic core with a
// hand-rolled convex relaxation: minimize (x-2.6)² over integers in [0,5],
// whose box-restricted continuous optimum is the clipped 2.6.
func TestGenericRelaxationHook(t *testing.T) {
	relax := func(lo, hi []float64) ([]float64, float64, RelaxStatus, error) {
		x := 2.6
		if x < lo[0] {
			x = lo[0]
		}
		if x > hi[0] {
			x = hi[0]
		}
		return []float64{x}, (x - 2.6) * (x - 2.6), RelaxOptimal, nil
	}
	res, err := Solve(1, []int{0}, []float64{0}, []float64{5}, relax, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 3 {
		t.Fatalf("x = %v, want 3 (nearest integer to 2.6)", res.X[0])
	}
	if math.Abs(res.Objective-0.16) > 1e-9 {
		t.Fatalf("objective = %v, want 0.16", res.Objective)
	}
}

func TestBoundsLengthValidation(t *testing.T) {
	relax := func(lo, hi []float64) ([]float64, float64, RelaxStatus, error) {
		return []float64{0}, 0, RelaxOptimal, nil
	}
	if _, err := Solve(2, nil, []float64{0}, []float64{1, 2}, relax, Options{}); err == nil {
		t.Fatal("want bounds length error")
	}
}

func BenchmarkKnapsack10(b *testing.B) {
	r := rng.New(1)
	n := 10
	m := &MILP{
		LP: lp.Problem{
			NumVars:   n,
			Objective: make([]float64, n),
			Lo:        make([]float64, n),
			Hi:        make([]float64, n),
		},
		Integer: make([]int, n),
	}
	weights := make([]float64, n)
	for i := 0; i < n; i++ {
		m.LP.Objective[i] = -(1 + 9*r.Float64())
		weights[i] = 1 + 4*r.Float64()
		m.LP.Hi[i] = 1
		m.Integer[i] = i
	}
	m.LP.Constraints = []lp.Constraint{{Coeffs: weights, Sense: lp.LE, RHS: 12}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = SolveMILP(m, Options{})
	}
}
