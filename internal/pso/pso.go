package pso

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/par"
	"repro/internal/rng"
)

// ErrBadProblem is returned for structurally invalid search spaces.
var ErrBadProblem = errors.New("pso: invalid problem")

// Dim describes one search dimension. Integer dimensions take the values
// {ceil(Lo), ..., floor(Hi)}.
type Dim struct {
	Lo, Hi  float64
	Integer bool
}

// Problem is a minimization over a box of mixed continuous/integer
// dimensions. Eval receives decoded values: integer dimensions are exact
// integers (as float64) regardless of encoding.
type Problem struct {
	Dims []Dim
	Eval func(x []float64) float64
}

// Encoding selects how integer dimensions are handled.
type Encoding int

// Encodings.
const (
	// EncodingContinuous treats every dimension as continuous; integer
	// dims are rejected.
	EncodingContinuous Encoding = iota + 1
	// EncodingRounding runs continuous dynamics and rounds integer dims at
	// evaluation time — the naive scheme whose premature stagnation the
	// paper warns about (the velocity keeps shrinking while the rounded
	// position stops changing).
	EncodingRounding
	// EncodingDistribution expands each integer dim into one logit per
	// admissible value; the decoded value is the argmax logit. This is the
	// distribution-over-values representation of [9].
	EncodingDistribution
)

// Options configures a run. Zero fields take defaults.
type Options struct {
	Swarm    int     // particles, default 20
	MaxIter  int     // default 200
	C1       float64 // cognitive acceleration α₁, default 1.49445
	C2       float64 // social acceleration α₂, default 1.49445
	Inertia  InertiaSchedule
	Encoding Encoding
	VelClamp float64 // max |v| as fraction of range per dim, default 0.5
	Seed     uint64
	// StagnationWindow is the per-particle stall length that triggers
	// dispersion (0 disables dispersion).
	StagnationWindow int
	// Target stops early when the global best reaches Target (use
	// -Inf, the default via NaN handling, to disable).
	Target float64
	// TrackHistory records the global best per iteration.
	TrackHistory bool
	// Parallel fans particle evaluation out over the internal/par worker
	// pool. The swarm dynamics are synchronous and every particle owns a
	// private RNG stream split from Seed, so the result is bit-identical
	// to the serial path at any RCR_WORKERS — but Eval is then called
	// concurrently and must be safe for that (pure functions are; closures
	// that mutate captured state, e.g. eval counters feeding per-candidate
	// seeds, are not and must leave Parallel false).
	Parallel bool
	// Budget bounds the run: cancellation and deadline are checked at
	// swarm-iteration boundaries, MaxEvals counts objective evaluations.
	// The zero budget imposes nothing.
	Budget guard.Budget
}

func (o Options) withDefaults() Options {
	if o.Swarm == 0 {
		o.Swarm = 20
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	if o.C1 == 0 {
		o.C1 = 1.49445
	}
	if o.C2 == 0 {
		o.C2 = 1.49445
	}
	if o.Inertia == nil {
		o.Inertia = LinearInertia{Start: 0.9, End: 0.4}
	}
	if o.Encoding == 0 {
		o.Encoding = EncodingContinuous
	}
	if o.VelClamp == 0 {
		o.VelClamp = 0.5
	}
	if o.Target == 0 {
		o.Target = math.Inf(-1)
	}
	return o
}

// Result reports the best point found and run diagnostics.
type Result struct {
	X     []float64 // decoded values (integer dims integral)
	F     float64
	Evals int
	// Iterations actually run (may stop early on Target).
	Iterations int
	// StagnantIters is the final count of consecutive non-improving
	// iterations of the global best.
	StagnantIters int
	// Dispersions counts particle re-randomizations triggered by
	// stagnation detection.
	Dispersions int
	// History is the global best value per iteration when TrackHistory.
	History []float64
	// BadEvals counts NaN objective values, each treated as +Inf so the
	// best-so-far bookkeeping is never poisoned (NaN fails every comparison
	// and would silently freeze it). The mapping is per-particle, so it is
	// scheduling-independent and preserves bit-reproducibility.
	BadEvals int
	// Status is the typed termination cause: Converged on any clean stop
	// (Target reached or the iteration schedule completed with a finite
	// best), Diverged when no evaluation ever produced a finite value, and
	// MaxIter / Timeout / Canceled when the budget interrupted the run (X
	// then holds the best point seen so far).
	Status guard.Status
}

// Minimize runs PSO on p.
//
// The swarm is synchronous: every particle updates its velocity and
// position against the global best of the *previous* iteration, all
// particles are evaluated (concurrently when Options.Parallel), and the
// personal/global bests are then folded in ascending particle order.
// Every particle owns a private RNG stream split from the master seed, so
// no random draw ever depends on evaluation scheduling. Together these
// make the run bit-for-bit reproducible at any worker count — the mutseed
// discipline extended to concurrency.
func Minimize(p *Problem, o Options) (*Result, error) {
	o = o.withDefaults()
	if err := validate(p, o); err != nil {
		return nil, err
	}
	enc := newEncoder(p, o.Encoding)
	n := enc.dim()
	// Per-particle streams: Split derives statistically independent
	// children from the one master seed, so reproducibility survives the
	// fan-out (see internal/rng).
	root := rng.New(o.Seed)
	streams := make([]*rng.Rand, o.Swarm)
	for i := range streams {
		streams[i] = root.Split()
	}

	// Internal-space bounds and velocity clamps.
	lo, hi := enc.bounds()
	vmax := make([]float64, n)
	for i := range vmax {
		vmax[i] = o.VelClamp * (hi[i] - lo[i])
	}

	pos := make([][]float64, o.Swarm)
	vel := make([][]float64, o.Swarm)
	pbest := make([][]float64, o.Swarm)
	pbestF := make([]float64, o.Swarm)
	pStall := make([]int, o.Swarm)
	fvals := make([]float64, o.Swarm)
	decoded := make([][]float64, o.Swarm)
	for i := range decoded {
		decoded[i] = make([]float64, len(p.Dims))
	}
	var gbest []float64
	gbestF := math.Inf(1)
	res := &Result{}
	mon := o.Budget.Start()

	// sanitized maps a raw objective value into the reduction: NaN becomes
	// +Inf (counted) so comparisons behave; ±Inf passes through.
	sanitized := func(f float64) float64 {
		if math.IsNaN(f) {
			res.BadEvals++
			return math.Inf(1)
		}
		return f
	}

	evalParticle := func(i int) {
		enc.decode(pos[i], decoded[i])
		fvals[i] = p.Eval(decoded[i])
	}
	// eachParticle runs body once per particle index. The parallel and
	// serial paths produce identical state: body(i) touches only
	// particle i's slots and stream.
	eachParticle := func(body func(i int)) {
		if o.Parallel {
			par.For(o.Swarm, 1, func(plo, phi int) {
				for i := plo; i < phi; i++ {
					body(i)
				}
			})
			return
		}
		for i := 0; i < o.Swarm; i++ {
			body(i)
		}
	}

	eachParticle(func(i int) {
		r := streams[i]
		pos[i] = make([]float64, n)
		vel[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			pos[i][j] = r.Uniform(lo[j], hi[j])
			vel[i][j] = r.Uniform(-vmax[j], vmax[j])
		}
		evalParticle(i)
	})
	for i := 0; i < o.Swarm; i++ { // ordered init reduction
		res.Evals++
		f := sanitized(fvals[i])
		pbest[i] = append([]float64(nil), pos[i]...)
		pbestF[i] = f
		if f < gbestF {
			gbestF = f
			gbest = append([]float64(nil), pos[i]...)
		}
	}
	if gbest == nil {
		// Every initial evaluation was non-finite: anchor the global best at
		// particle 0 (deterministic) so the velocity update has a target and
		// the swarm can still recover if later evaluations turn finite.
		gbest = append([]float64(nil), pos[0]...)
	}

	stagnant := 0
	interrupted := guard.StatusOK
	for it := 0; it < o.MaxIter; it++ {
		mon.AddEvals(res.Evals - mon.Evals())
		if st := mon.Check(it); st != guard.StatusOK {
			interrupted = st
			break
		}
		w := o.Inertia.Weight(it, o.MaxIter, stagnant)
		eachParticle(func(i int) {
			r := streams[i]
			for j := 0; j < n; j++ {
				b1 := r.Float64()
				b2 := r.Float64()
				v := w*vel[i][j] +
					o.C1*b1*(pbest[i][j]-pos[i][j]) +
					o.C2*b2*(gbest[j]-pos[i][j])
				if v > vmax[j] {
					v = vmax[j]
				}
				if v < -vmax[j] {
					v = -vmax[j]
				}
				vel[i][j] = v
				x := pos[i][j] + v
				// Reflecting walls keep particles in the box without
				// killing their velocity entirely.
				if x < lo[j] {
					x = lo[j]
					vel[i][j] = -0.5 * vel[i][j]
				}
				if x > hi[j] {
					x = hi[j]
					vel[i][j] = -0.5 * vel[i][j]
				}
				pos[i][j] = x
			}
			evalParticle(i)
		})
		// Ordered reduction: personal/global bests, stall bookkeeping,
		// and dispersion fold serially in particle order, so the global
		// best never depends on which worker finished first.
		improved := false
		for i := 0; i < o.Swarm; i++ {
			res.Evals++
			f := sanitized(fvals[i])
			if f < pbestF[i] {
				pbestF[i] = f
				copy(pbest[i], pos[i])
				pStall[i] = 0
			} else {
				pStall[i]++
			}
			if f < gbestF {
				gbestF = f
				copy(gbest, pos[i])
				improved = true
			}
			// Dispersion: re-randomize a particle that has stalled past
			// the window (stagnation detection of [15]), drawing from the
			// particle's own stream.
			if o.StagnationWindow > 0 && pStall[i] >= o.StagnationWindow {
				r := streams[i]
				for j := 0; j < n; j++ {
					pos[i][j] = r.Uniform(lo[j], hi[j])
					vel[i][j] = r.Uniform(-vmax[j], vmax[j])
				}
				pStall[i] = 0
				res.Dispersions++
			}
		}
		if improved {
			stagnant = 0
		} else {
			stagnant++
		}
		if o.TrackHistory {
			res.History = append(res.History, gbestF)
		}
		res.Iterations = it + 1
		if gbestF <= o.Target {
			break
		}
	}
	res.F = gbestF
	res.X = make([]float64, len(p.Dims))
	enc.decode(gbest, res.X)
	res.StagnantIters = stagnant
	if interrupted != guard.StatusOK {
		res.Status = interrupted
		return res, guard.Err(interrupted, "pso: stopped after %d iterations", res.Iterations)
	}
	if !guard.Finite(gbestF) {
		res.Status = guard.StatusDiverged
		return res, guard.Err(guard.StatusDiverged,
			"pso: non-finite global best (%g) after %d evaluations", gbestF, res.Evals)
	}
	res.Status = guard.StatusConverged
	return res, nil
}

func validate(p *Problem, o Options) error {
	if p == nil || p.Eval == nil {
		return fmt.Errorf("%w: nil problem or Eval", ErrBadProblem)
	}
	if len(p.Dims) == 0 {
		return fmt.Errorf("%w: no dimensions", ErrBadProblem)
	}
	if err := validateSchedule(o.Inertia); err != nil {
		return err
	}
	for i, d := range p.Dims {
		if !(d.Lo <= d.Hi) {
			return fmt.Errorf("%w: dim %d has Lo %g > Hi %g", ErrBadProblem, i, d.Lo, d.Hi)
		}
		if d.Integer {
			if o.Encoding == EncodingContinuous {
				return fmt.Errorf("%w: dim %d is integer but encoding is continuous", ErrBadProblem, i)
			}
			if math.Ceil(d.Lo) > math.Floor(d.Hi) {
				return fmt.Errorf("%w: dim %d has no integer values in [%g,%g]", ErrBadProblem, i, d.Lo, d.Hi)
			}
			if o.Encoding == EncodingDistribution && math.Floor(d.Hi)-math.Ceil(d.Lo) > 256 {
				return fmt.Errorf("%w: dim %d has too many integer values for distribution encoding", ErrBadProblem, i)
			}
		}
	}
	return nil
}

// Diversity returns the mean Euclidean distance of decoded positions to
// their centroid — a standard swarm-collapse diagnostic. It is exposed for
// the stagnation experiments.
func Diversity(points [][]float64) float64 {
	if len(points) == 0 {
		return 0
	}
	n := len(points[0])
	centroid := make([]float64, n)
	for _, p := range points {
		for j := range p {
			centroid[j] += p[j]
		}
	}
	for j := range centroid {
		centroid[j] /= float64(len(points))
	}
	var sum float64
	for _, p := range points {
		var d float64
		for j := range p {
			v := p[j] - centroid[j]
			d += v * v
		}
		sum += math.Sqrt(d)
	}
	return sum / float64(len(points))
}
