// Package pso implements particle swarm optimization as the paper uses it:
// the canonical position/velocity dynamics of Eqs. 1–2, pluggable inertia
// schedules (constant, linearly decaying, and the adaptive weighting the
// paper's "M-GNU-O" layer provides to fight premature stagnation), two
// discrete-variable encodings — naive velocity rounding, which the paper
// notes "creates an artificial paradigm, wherein particles may stagnate
// prematurely", and the distribution-based encoding of Strasser et al. [9]
// where "each attribute of a PSO particle is a distribution over its
// possible values rather than a specific value" — plus stagnation detection
// and dispersion (Worasucheep [15]).
package pso

import "fmt"

// InertiaSchedule produces the inertia weight ι(k) for iteration k. state
// carries swarm feedback so adaptive schedules can react to stagnation.
type InertiaSchedule interface {
	// Weight returns the inertia for iteration iter of maxIter given the
	// number of consecutive iterations without global-best improvement.
	Weight(iter, maxIter, stagnantIters int) float64
}

// ConstantInertia is the fixed weight ι(k) = W.
type ConstantInertia struct {
	W float64
}

// Weight implements InertiaSchedule.
func (c ConstantInertia) Weight(_, _, _ int) float64 { return c.W }

// LinearInertia decays linearly from Start to End over the run — the
// classic schedule that explores early and exploits late.
type LinearInertia struct {
	Start, End float64
}

// Weight implements InertiaSchedule.
func (l LinearInertia) Weight(iter, maxIter, _ int) float64 {
	if maxIter <= 1 {
		return l.End
	}
	f := float64(iter) / float64(maxIter-1)
	return l.Start + (l.End-l.Start)*f
}

// AdaptiveInertia implements the stagnation-reactive weighting the paper
// attributes to its modified numeric platform: the weight sits at Base
// while the swarm improves and grows by Boost per stagnant iteration (up
// to Max), giving particles the extra momentum needed to "advance past
// their current local optimum instead of stagnating prematurely". When
// improvement resumes the weight snaps back to Base.
type AdaptiveInertia struct {
	Base  float64 // default operating weight, e.g. 0.5
	Boost float64 // additional weight per stagnant iteration, e.g. 0.05
	Max   float64 // cap, e.g. 0.95
}

// Weight implements InertiaSchedule.
func (a AdaptiveInertia) Weight(_, _, stagnantIters int) float64 {
	w := a.Base + a.Boost*float64(stagnantIters)
	if w > a.Max {
		w = a.Max
	}
	return w
}

// DefaultAdaptiveInertia returns the tuning used across the experiments.
func DefaultAdaptiveInertia() AdaptiveInertia {
	return AdaptiveInertia{Base: 0.5, Boost: 0.04, Max: 0.95}
}

func validateSchedule(s InertiaSchedule) error {
	if s == nil {
		return fmt.Errorf("pso: nil inertia schedule")
	}
	return nil
}
