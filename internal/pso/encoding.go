package pso

import "math"

// encoder maps between the internal continuous search space the swarm
// moves in and the decoded mixed-integer values the objective sees.
type encoder struct {
	dims     []Dim
	encoding Encoding
	// For EncodingDistribution: per input dim, the slice [start, start+k)
	// of internal coordinates holding the value logits (k = #values), or
	// width 1 for continuous dims.
	starts []int
	widths []int
	total  int
}

func newEncoder(p *Problem, enc Encoding) *encoder {
	e := &encoder{dims: p.Dims, encoding: enc}
	e.starts = make([]int, len(p.Dims))
	e.widths = make([]int, len(p.Dims))
	off := 0
	for i, d := range p.Dims {
		e.starts[i] = off
		w := 1
		if enc == EncodingDistribution && d.Integer {
			w = int(math.Floor(d.Hi)-math.Ceil(d.Lo)) + 1
		}
		e.widths[i] = w
		off += w
	}
	e.total = off
	return e
}

// dim returns the internal dimensionality.
func (e *encoder) dim() int { return e.total }

// bounds returns internal-space box bounds. Logit coordinates live in
// [0, 1]; continuous and rounding coordinates keep their natural bounds.
func (e *encoder) bounds() (lo, hi []float64) {
	lo = make([]float64, e.total)
	hi = make([]float64, e.total)
	for i, d := range e.dims {
		if e.widths[i] == 1 {
			lo[e.starts[i]] = d.Lo
			hi[e.starts[i]] = d.Hi
			continue
		}
		for j := 0; j < e.widths[i]; j++ {
			lo[e.starts[i]+j] = 0
			hi[e.starts[i]+j] = 1
		}
	}
	return lo, hi
}

// decode maps an internal point to objective values: continuous dims pass
// through (clamped), rounding-encoded integer dims round, and
// distribution-encoded dims take the argmax logit's value.
func (e *encoder) decode(x []float64, out []float64) {
	for i, d := range e.dims {
		s := e.starts[i]
		if e.widths[i] > 1 {
			best := 0
			for j := 1; j < e.widths[i]; j++ {
				if x[s+j] > x[s+best] {
					best = j
				}
			}
			//lint:ignore dimcheck decode contract: out is allocated by the solver loop with enc.dim() == len(e.dims) entries
			out[i] = math.Ceil(d.Lo) + float64(best)
			continue
		}
		v := x[s]
		if v < d.Lo {
			v = d.Lo
		}
		if v > d.Hi {
			v = d.Hi
		}
		if d.Integer && e.encoding == EncodingRounding {
			v = math.Round(v)
			if v < math.Ceil(d.Lo) {
				v = math.Ceil(d.Lo)
			}
			if v > math.Floor(d.Hi) {
				v = math.Floor(d.Hi)
			}
		}
		out[i] = v
	}
}
