package pso_test

import (
	"fmt"

	"repro/internal/pso"
)

// ExampleMinimize tunes a 2-D quadratic with an adaptive inertia schedule.
func ExampleMinimize() {
	problem := &pso.Problem{
		Dims: []pso.Dim{{Lo: -5, Hi: 5}, {Lo: -5, Hi: 5}},
		Eval: func(x []float64) float64 {
			return (x[0]-1)*(x[0]-1) + (x[1]+2)*(x[1]+2)
		},
	}
	res, err := pso.Minimize(problem, pso.Options{
		Seed:    7,
		MaxIter: 300,
		Inertia: pso.DefaultAdaptiveInertia(),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("x = (%.2f, %.2f), f = %.4f\n", res.X[0], res.X[1], res.F)
	// Output: x = (1.00, -2.00), f = 0.0000
}
