package pso

import (
	"math"
	"testing"

	"repro/internal/par"
)

// runAtWorkers runs one representative PSO optimization (integer dims,
// dispersion enabled, history tracked) with concurrent evaluation under a
// pinned worker count.
func runAtWorkers(t *testing.T, workers string, parallel bool) *Result {
	t.Helper()
	t.Setenv(par.EnvWorkers, workers)
	rastrigin := func(x []float64) float64 {
		s := 10 * float64(len(x))
		for _, v := range x {
			s += v*v - 10*math.Cos(2*math.Pi*v)
		}
		return s
	}
	res, err := Minimize(&Problem{
		Dims: []Dim{
			{Lo: -5.12, Hi: 5.12},
			{Lo: -5.12, Hi: 5.12},
			{Lo: -5, Hi: 5, Integer: true},
		},
		Eval: rastrigin,
	}, Options{
		Seed:             909,
		Swarm:            16,
		MaxIter:          60,
		Encoding:         EncodingRounding,
		StagnationWindow: 10,
		TrackHistory:     true,
		Parallel:         parallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.F != b.F {
		t.Fatalf("%s: best value differs: %v vs %v", label, a.F, b.F)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("%s: best point dim %d differs: %v vs %v", label, i, a.X[i], b.X[i])
		}
	}
	if a.Evals != b.Evals || a.Iterations != b.Iterations ||
		a.Dispersions != b.Dispersions || a.StagnantIters != b.StagnantIters {
		t.Fatalf("%s: diagnostics differ: %+v vs %+v", label, a, b)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("%s: history iter %d differs: %v vs %v", label, i, a.History[i], b.History[i])
		}
	}
}

// TestMinimizeDeterministicAcrossWorkerCounts pins the concurrency
// contract of the synchronous swarm: per-particle RNG streams plus the
// ordered reduction make a Parallel run bit-identical at any RCR_WORKERS,
// and identical to the serial path.
func TestMinimizeDeterministicAcrossWorkerCounts(t *testing.T) {
	par1 := runAtWorkers(t, "1", true)
	par8 := runAtWorkers(t, "8", true)
	serial := runAtWorkers(t, "8", false)
	sameResult(t, "parallel 1 vs 8 workers", par1, par8)
	sameResult(t, "serial vs parallel", serial, par8)
}
