package pso

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

// rastrigin is a classic multimodal benchmark; global minimum 0 at origin.
func rastrigin(x []float64) float64 {
	s := 10 * float64(len(x))
	for _, v := range x {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return s
}

func boxDims(n int, lo, hi float64) []Dim {
	ds := make([]Dim, n)
	for i := range ds {
		ds[i] = Dim{Lo: lo, Hi: hi}
	}
	return ds
}

func TestSphereConvergence(t *testing.T) {
	p := &Problem{Dims: boxDims(4, -5, 5), Eval: sphere}
	res, err := Minimize(p, Options{Seed: 1, MaxIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-4 {
		t.Fatalf("sphere best = %v, want near 0", res.F)
	}
}

func TestRastriginSmallSwarmGoodEnough(t *testing.T) {
	// The paper's claim: "even relatively small swarm sizes are fairly
	// consistent in providing good-enough near-optimum solutions in
	// relatively few iterations."
	p := &Problem{Dims: boxDims(3, -5.12, 5.12), Eval: rastrigin}
	res, err := Minimize(p, Options{Seed: 2, Swarm: 15, MaxIter: 400})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 3 { // within a couple of local basins of the optimum
		t.Fatalf("rastrigin best = %v, want < 3", res.F)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p := &Problem{Dims: boxDims(3, -2, 2), Eval: sphere}
	a, err := Minimize(p, Options{Seed: 7, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Minimize(p, Options{Seed: 7, MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a.F != b.F {
		t.Fatalf("same seed, different results: %v vs %v", a.F, b.F)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("same seed, different X")
		}
	}
}

func TestTargetEarlyStop(t *testing.T) {
	p := &Problem{Dims: boxDims(2, -5, 5), Eval: sphere}
	res, err := Minimize(p, Options{Seed: 3, MaxIter: 1000, Target: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 1000 {
		t.Fatalf("should stop early, ran %d iterations", res.Iterations)
	}
	if res.F > 0.1 {
		t.Fatalf("stopped without reaching target: %v", res.F)
	}
}

func TestRoundingEncodingSolvesIntegerProblem(t *testing.T) {
	// min (x-3)² + (y+2)² with x,y integer in [-10, 10].
	p := &Problem{
		Dims: []Dim{
			{Lo: -10, Hi: 10, Integer: true},
			{Lo: -10, Hi: 10, Integer: true},
		},
		Eval: func(x []float64) float64 {
			return (x[0]-3)*(x[0]-3) + (x[1]+2)*(x[1]+2)
		},
	}
	res, err := Minimize(p, Options{Seed: 4, Encoding: EncodingRounding, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 3 || res.X[1] != -2 {
		t.Fatalf("x = %v, want [3 -2]", res.X)
	}
	if res.F != 0 {
		t.Fatalf("f = %v, want 0", res.F)
	}
}

func TestDistributionEncodingSolvesIntegerProblem(t *testing.T) {
	p := &Problem{
		Dims: []Dim{
			{Lo: 0, Hi: 9, Integer: true},
			{Lo: 0, Hi: 9, Integer: true},
		},
		Eval: func(x []float64) float64 {
			return math.Abs(x[0]-7) + math.Abs(x[1]-1)
		},
	}
	res, err := Minimize(p, Options{Seed: 5, Encoding: EncodingDistribution, MaxIter: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.F != 0 {
		t.Fatalf("f = %v (x=%v), want 0", res.F, res.X)
	}
}

func TestIntegerValuesAreIntegral(t *testing.T) {
	f := func(seed uint64) bool {
		p := &Problem{
			Dims: []Dim{
				{Lo: -4, Hi: 4, Integer: true},
				{Lo: -1, Hi: 1},
			},
			Eval: func(x []float64) float64 {
				if x[0] != math.Trunc(x[0]) {
					return math.NaN() // would poison the result below
				}
				return sphere(x)
			},
		}
		for _, enc := range []Encoding{EncodingRounding, EncodingDistribution} {
			res, err := Minimize(p, Options{Seed: seed, Encoding: enc, MaxIter: 30})
			if err != nil || math.IsNaN(res.F) {
				return false
			}
			if res.X[0] != math.Trunc(res.X[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestContinuousEncodingRejectsIntegerDims(t *testing.T) {
	p := &Problem{
		Dims: []Dim{{Lo: 0, Hi: 5, Integer: true}},
		Eval: sphere,
	}
	_, err := Minimize(p, Options{})
	if !errors.Is(err, ErrBadProblem) {
		t.Fatalf("want ErrBadProblem, got %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := Minimize(nil, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Fatal("nil problem should fail")
	}
	if _, err := Minimize(&Problem{Eval: sphere}, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Fatal("no dims should fail")
	}
	p := &Problem{Dims: []Dim{{Lo: 2, Hi: 1}}, Eval: sphere}
	if _, err := Minimize(p, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Fatal("crossed bounds should fail")
	}
	empty := &Problem{Dims: []Dim{{Lo: 0.2, Hi: 0.8, Integer: true}}, Eval: sphere}
	if _, err := Minimize(empty, Options{Encoding: EncodingRounding}); !errors.Is(err, ErrBadProblem) {
		t.Fatal("integer dim without integer values should fail")
	}
}

func TestInertiaSchedules(t *testing.T) {
	c := ConstantInertia{W: 0.7}
	if c.Weight(0, 100, 50) != 0.7 {
		t.Fatal("constant inertia not constant")
	}
	l := LinearInertia{Start: 0.9, End: 0.4}
	if l.Weight(0, 100, 0) != 0.9 {
		t.Fatal("linear inertia wrong at start")
	}
	if math.Abs(l.Weight(99, 100, 0)-0.4) > 1e-12 {
		t.Fatal("linear inertia wrong at end")
	}
	if l.Weight(0, 1, 0) != 0.4 {
		t.Fatal("linear inertia degenerate maxIter")
	}
	a := DefaultAdaptiveInertia()
	if a.Weight(0, 100, 0) != a.Base {
		t.Fatal("adaptive inertia should start at base")
	}
	if a.Weight(0, 100, 5) <= a.Base {
		t.Fatal("adaptive inertia should grow under stagnation")
	}
	if a.Weight(0, 100, 1000) > a.Max {
		t.Fatal("adaptive inertia exceeded cap")
	}
}

// TestAdaptiveInertiaHelpsDiscreteStagnation reproduces the paper's core
// PSO claim in miniature: on a discrete multimodal problem with naive
// rounding, adaptive inertia (plus dispersion) reaches the optimum at
// least as reliably as a fixed low inertia across seeds.
func TestAdaptiveInertiaHelpsDiscreteStagnation(t *testing.T) {
	intRastrigin := func(x []float64) float64 { return rastrigin(x) }
	dims := []Dim{
		{Lo: -5, Hi: 5, Integer: true},
		{Lo: -5, Hi: 5, Integer: true},
		{Lo: -5, Hi: 5, Integer: true},
	}
	success := func(in InertiaSchedule, window int) int {
		hits := 0
		for seed := uint64(0); seed < 20; seed++ {
			p := &Problem{Dims: dims, Eval: intRastrigin}
			res, err := Minimize(p, Options{
				Seed:             seed,
				Swarm:            10,
				MaxIter:          120,
				Encoding:         EncodingRounding,
				Inertia:          in,
				StagnationWindow: window,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.F == 0 {
				hits++
			}
		}
		return hits
	}
	fixed := success(ConstantInertia{W: 0.3}, 0)
	adaptive := success(DefaultAdaptiveInertia(), 15)
	if adaptive < fixed {
		t.Fatalf("adaptive inertia (%d/20) did worse than fixed low inertia (%d/20)", adaptive, fixed)
	}
	if adaptive < 12 {
		t.Fatalf("adaptive inertia succeeded only %d/20 times", adaptive)
	}
}

func TestDispersionCounter(t *testing.T) {
	// A deliberately flat objective forces stalls and hence dispersions.
	p := &Problem{Dims: boxDims(2, -1, 1), Eval: func(x []float64) float64 { return 0 }}
	res, err := Minimize(p, Options{Seed: 9, MaxIter: 60, StagnationWindow: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dispersions == 0 {
		t.Fatal("expected dispersions on a flat objective")
	}
}

func TestHistoryTracking(t *testing.T) {
	p := &Problem{Dims: boxDims(2, -5, 5), Eval: sphere}
	res, err := Minimize(p, Options{Seed: 10, MaxIter: 40, TrackHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations {
		t.Fatalf("history length %d, iterations %d", len(res.History), res.Iterations)
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1]+1e-15 {
			t.Fatal("global best must be monotone non-increasing")
		}
	}
}

func TestDiversity(t *testing.T) {
	if Diversity(nil) != 0 {
		t.Fatal("empty diversity should be 0")
	}
	same := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	if Diversity(same) != 0 {
		t.Fatal("identical points should have zero diversity")
	}
	spread := [][]float64{{-1, 0}, {1, 0}}
	if math.Abs(Diversity(spread)-1) > 1e-12 {
		t.Fatalf("diversity = %v, want 1", Diversity(spread))
	}
}

func BenchmarkPSOSphere(b *testing.B) {
	p := &Problem{Dims: boxDims(5, -5, 5), Eval: sphere}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Minimize(p, Options{Seed: uint64(i), MaxIter: 100})
	}
}
