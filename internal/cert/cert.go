// Package cert defines the vocabulary of a-posteriori solve certificates:
// named scalar checks, verdicts, and the tolerance policy the certifier in
// internal/prob applies to every backend answer before it is accepted,
// cached, or propagated.
//
// The paper's framework never trusts a relaxed solve on its own — Sec. III
// pairs every relaxation with a certification step, and the sequential SDP
// verification line of work treats a solver's answer as untrusted until an
// independent residual/gap check passes. This package is the solver-agnostic
// half of that contract: it knows nothing about problems or backends, only
// how to accumulate checks of the form "this residual must not exceed this
// tolerance" into a verdict. The problem-aware half (which residuals to
// compute, against which space) lives next to the IR in internal/prob, which
// is also what keeps this package a leaf — backends and the IR may import it
// freely without cycles.
package cert

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Verdict classifies a certificate.
type Verdict int

const (
	// VerdictNone means certification did not run (disabled, or the result
	// carried a typed failure status with nothing to certify).
	VerdictNone Verdict = iota
	// VerdictPass means every check passed.
	VerdictPass
	// VerdictFail means at least one check failed.
	VerdictFail
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictPass:
		return "pass"
	case VerdictFail:
		return "fail"
	default:
		return "none"
	}
}

// Check is one named scalar test: Value must be finite and must not exceed
// Tol. A NaN or +Inf Value always fails — a check that cannot be evaluated
// is treated as a failed check, never a passed one.
type Check struct {
	Name  string
	Value float64
	Tol   float64
	OK    bool
}

// Certificate is the outcome of certifying one solve attempt.
type Certificate struct {
	Verdict Verdict
	Checks  []Check
	// Retries counts the escalation re-solves consumed before this verdict
	// (0 for a first-attempt verdict).
	Retries int
}

// Failures returns the names of the failed checks, in check order.
func (c *Certificate) Failures() []string {
	if c == nil {
		return nil
	}
	var out []string
	for _, ch := range c.Checks {
		if !ch.OK {
			out = append(out, ch.Name)
		}
	}
	return out
}

// Check returns the named check and whether it was recorded.
func (c *Certificate) Check(name string) (Check, bool) {
	if c == nil {
		return Check{}, false
	}
	for _, ch := range c.Checks {
		if ch.Name == name {
			return ch, true
		}
	}
	return Check{}, false
}

// String renders the certificate as "pass", "none", or
// "fail(name1,name2,...)" with the failed check names sorted — the compact
// form recorded in provenance trails.
func (c *Certificate) String() string {
	if c == nil {
		return Verdict(VerdictNone).String()
	}
	if c.Verdict != VerdictFail {
		return c.Verdict.String()
	}
	fails := c.Failures()
	sort.Strings(fails)
	return fmt.Sprintf("fail(%s)", strings.Join(fails, ","))
}

// Tolerances is the certificate tolerance policy. Every bound is applied to
// a relative quantity (violations are scaled by 1+|reference| before
// comparison), so one policy serves problems at any magnitude. The zero
// value takes defaults via WithDefaults; the defaults are deliberately
// looser than the backends' own convergence tolerances — a certificate is a
// corruption detector, not a second convergence test — but far tighter than
// any corruption worth detecting.
type Tolerances struct {
	// Feas bounds primal feasibility residuals (constraint rows, bounds,
	// conic membership). Default 1e-6.
	Feas float64
	// Obj bounds the relative disagreement between a reported objective and
	// its recomputation from the returned point. Default 1e-6.
	Obj float64
	// Gap bounds backend-surfaced duality gaps where dual information
	// exists. It is a coarse sanity bound (dual recovery is approximate),
	// not a convergence test. Default 1e-2.
	Gap float64
	// Int bounds integrality violations of MINLP incumbents. Default 1e-6.
	Int float64
}

// WithDefaults fills zero fields with the default policy.
func (t Tolerances) WithDefaults() Tolerances {
	if t.Feas == 0 {
		t.Feas = 1e-6
	}
	if t.Obj == 0 {
		t.Obj = 1e-6
	}
	if t.Gap == 0 {
		t.Gap = 1e-2
	}
	if t.Int == 0 {
		t.Int = 1e-6
	}
	return t
}

// RelGap returns |a-b| / (1 + max(|a|,|b|)), the symmetric relative
// disagreement used by objective-consistency and duality-gap checks.
func RelGap(a, b float64) float64 {
	d := math.Abs(a - b)
	s := math.Abs(a)
	if ab := math.Abs(b); ab > s {
		s = ab
	}
	return d / (1 + s)
}

// Builder accumulates checks into a certificate.
type Builder struct {
	c Certificate
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Add records one check: pass iff value is finite and value <= tol.
// It returns whether the check passed.
func (b *Builder) Add(name string, value, tol float64) bool {
	ok := !math.IsNaN(value) && !math.IsInf(value, 0) && value <= tol
	b.c.Checks = append(b.c.Checks, Check{Name: name, Value: value, Tol: tol, OK: ok})
	return ok
}

// Fail records an unconditionally failed check (used when the quantity to
// test is structurally absent — e.g. a "converged" result with no solution).
func (b *Builder) Fail(name string) {
	b.c.Checks = append(b.c.Checks, Check{Name: name, Value: math.Inf(1), OK: false})
}

// Done seals the builder into a certificate: VerdictPass when every check
// passed, VerdictFail when any failed, VerdictNone when no checks ran.
func (b *Builder) Done() *Certificate {
	if len(b.c.Checks) == 0 {
		return &Certificate{Verdict: VerdictNone}
	}
	b.c.Verdict = VerdictPass
	for _, ch := range b.c.Checks {
		if !ch.OK {
			b.c.Verdict = VerdictFail
			break
		}
	}
	out := b.c
	return &out
}
