package cert

import (
	"math"
	"testing"
)

func TestVerdictStrings(t *testing.T) {
	cases := map[Verdict]string{VerdictNone: "none", VerdictPass: "pass", VerdictFail: "fail"}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestBuilderAllPass(t *testing.T) {
	b := NewBuilder()
	if !b.Add("primal", 1e-9, 1e-6) {
		t.Fatal("passing check reported as failed")
	}
	b.Add("objective", 0, 1e-6)
	c := b.Done()
	if c.Verdict != VerdictPass {
		t.Fatalf("verdict = %v, want pass", c.Verdict)
	}
	if c.String() != "pass" {
		t.Fatalf("String() = %q, want pass", c.String())
	}
	if fails := c.Failures(); fails != nil {
		t.Fatalf("Failures() = %v, want nil", fails)
	}
}

func TestBuilderFailure(t *testing.T) {
	b := NewBuilder()
	b.Add("primal", 3e-4, 1e-6)
	b.Add("objective", 0, 1e-6)
	b.Fail("solution")
	c := b.Done()
	if c.Verdict != VerdictFail {
		t.Fatalf("verdict = %v, want fail", c.Verdict)
	}
	// Failed names are sorted in the trail form.
	if got := c.String(); got != "fail(primal,solution)" {
		t.Fatalf("String() = %q, want fail(primal,solution)", got)
	}
	ch, ok := c.Check("primal")
	if !ok || ch.OK || ch.Value != 3e-4 {
		t.Fatalf("Check(primal) = %+v, %v", ch, ok)
	}
}

// A check exactly at tolerance passes; one just beyond fails — the boundary
// is inclusive so "within tolerance" means what the docs say.
func TestBuilderBoundary(t *testing.T) {
	b := NewBuilder()
	b.Add("at", 1e-6, 1e-6)
	c := b.Done()
	if c.Verdict != VerdictPass {
		t.Fatalf("value == tol should pass, got %v", c.Verdict)
	}
	b = NewBuilder()
	b.Add("over", math.Nextafter(1e-6, 1), 1e-6)
	if c := b.Done(); c.Verdict != VerdictFail {
		t.Fatalf("value just over tol should fail, got %v", c.Verdict)
	}
}

// Non-finite check values must fail: a residual that cannot be evaluated is
// never evidence of correctness.
func TestBuilderNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1)} {
		b := NewBuilder()
		b.Add("primal", v, math.Inf(1))
		if c := b.Done(); c.Verdict != VerdictFail {
			t.Fatalf("non-finite value %v passed", v)
		}
	}
}

func TestBuilderEmpty(t *testing.T) {
	if c := NewBuilder().Done(); c.Verdict != VerdictNone {
		t.Fatalf("empty builder verdict = %v, want none", c.Verdict)
	}
}

func TestNilCertificate(t *testing.T) {
	var c *Certificate
	if c.String() != "none" || c.Failures() != nil {
		t.Fatalf("nil certificate: String=%q Failures=%v", c.String(), c.Failures())
	}
	if _, ok := c.Check("x"); ok {
		t.Fatal("nil certificate reported a check")
	}
}

func TestTolerancesDefaults(t *testing.T) {
	d := Tolerances{}.WithDefaults()
	if d.Feas != 1e-6 || d.Obj != 1e-6 || d.Gap != 1e-2 || d.Int != 1e-6 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	// Explicit fields survive.
	c := Tolerances{Feas: 1e-3}.WithDefaults()
	if c.Feas != 1e-3 || c.Obj != 1e-6 {
		t.Fatalf("explicit field overwritten: %+v", c)
	}
}

func TestRelGap(t *testing.T) {
	if g := RelGap(1, 1); g != 0 {
		t.Fatalf("RelGap(1,1) = %g", g)
	}
	// Symmetric.
	if RelGap(3, 5) != RelGap(5, 3) {
		t.Fatal("RelGap not symmetric")
	}
	// Scales relatively: a 1e-7 absolute difference at magnitude 1e6 is tiny.
	if g := RelGap(1e6, 1e6+0.1); g > 1e-6 {
		t.Fatalf("RelGap at large scale = %g", g)
	}
}
