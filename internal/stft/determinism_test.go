package stft

import (
	"testing"

	"repro/internal/par"
	"repro/internal/rng"
)

// transformAtWorkers runs the full analysis chain (Transform, ApplySkew,
// Spectrogram, Inverse) under a pinned worker count and returns everything
// it produced.
func transformAtWorkers(t *testing.T, workers string) (*Result, *Result, [][]float64, []float64) {
	t.Helper()
	t.Setenv(par.EnvWorkers, workers)
	r := rng.New(404)
	sig := make([]float64, 8192)
	for i := range sig {
		sig[i] = r.Float64()*2 - 1
	}
	cfg := DefaultConfig()
	res, err := Transform(sig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := ApplySkew(res, PhaseSkewFactors(cfg.FFTSize, cfg.WinLen))
	if err != nil {
		t.Fatal(err)
	}
	spec := Spectrogram(res)
	back, err := Inverse(res, len(sig))
	if err != nil {
		t.Fatal(err)
	}
	return res, skewed, spec, back
}

// TestTransformDeterministicAcrossWorkerCounts pins the package's
// parallelism contract: the frame fan-out over internal/par must be
// bit-for-bit invisible. Every coefficient, skewed coefficient, power
// value, and reconstructed sample must be identical at 1 and 8 workers.
func TestTransformDeterministicAcrossWorkerCounts(t *testing.T) {
	res1, skew1, spec1, back1 := transformAtWorkers(t, "1")
	res8, skew8, spec8, back8 := transformAtWorkers(t, "8")

	if len(res1.Coef) != len(res8.Coef) {
		t.Fatalf("frame count differs: %d vs %d", len(res1.Coef), len(res8.Coef))
	}
	for n := range res1.Coef {
		for m := range res1.Coef[n] {
			if res1.Coef[n][m] != res8.Coef[n][m] {
				t.Fatalf("Transform frame %d bin %d differs across worker counts", n, m)
			}
			if skew1.Coef[n][m] != skew8.Coef[n][m] {
				t.Fatalf("ApplySkew frame %d bin %d differs across worker counts", n, m)
			}
		}
		for m := range spec1[n] {
			if spec1[n][m] != spec8[n][m] {
				t.Fatalf("Spectrogram frame %d bin %d differs across worker counts", n, m)
			}
		}
	}
	for i := range back1 {
		if back1[i] != back8[i] {
			t.Fatalf("Inverse sample %d differs across worker counts", i)
		}
	}
}
