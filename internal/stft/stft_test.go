package stft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func randReal(r *rng.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.Norm()
	}
	return x
}

func TestMakeWindowShapes(t *testing.T) {
	for _, w := range []Window{WindowHann, WindowHamming, WindowRect, WindowGauss} {
		win, err := MakeWindow(w, 32)
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		if len(win) != 32 {
			t.Fatalf("%v: length %d", w, len(win))
		}
		for i, v := range win {
			if v < 0 || v > 1+1e-12 {
				t.Fatalf("%v[%d] = %v outside [0,1]", w, i, v)
			}
		}
	}
	if _, err := MakeWindow(WindowHann, 0); err == nil {
		t.Fatal("want error for zero-length window")
	}
	if _, err := MakeWindow(Window(99), 8); err == nil {
		t.Fatal("want error for unknown window")
	}
}

func TestHannEndpointsAndPeak(t *testing.T) {
	win, _ := MakeWindow(WindowHann, 64)
	if win[0] != 0 {
		t.Fatalf("periodic Hann should start at 0, got %v", win[0])
	}
	if math.Abs(win[32]-1) > 1e-12 {
		t.Fatalf("periodic Hann peak at n/2 should be 1, got %v", win[32])
	}
}

func TestCOLAError(t *testing.T) {
	win, _ := MakeWindow(WindowHann, 16)
	if e := COLAError(win, 4); e > 1e-12 {
		t.Fatalf("Hann² at 75%% overlap should be COLA, error %v", e)
	}
	if e := COLAError(win, 6); e < 1e-3 {
		t.Fatalf("Hann² at hop 6/16 should violate COLA, error %v", e)
	}
	rect, _ := MakeWindow(WindowRect, 16)
	if e := COLAError(rect, 16); e > 1e-12 {
		t.Fatalf("rect at hop=len should be COLA, error %v", e)
	}
	if e := COLAError(nil, 4); !math.IsInf(e, 1) {
		t.Fatal("empty window should give +Inf COLA error")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(), true},
		{"zero fft", Config{FFTSize: 0, Hop: 1, WinLen: 1, Window: WindowHann, Convention: ConventionSimplified}, false},
		{"zero hop", Config{FFTSize: 8, Hop: 0, WinLen: 8, Window: WindowHann, Convention: ConventionSimplified}, false},
		{"winlen too big", Config{FFTSize: 8, Hop: 2, WinLen: 9, Window: WindowHann, Convention: ConventionSimplified}, false},
		{"no convention", Config{FFTSize: 8, Hop: 2, WinLen: 8, Window: WindowHann}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Fatalf("%s: Validate() = %v, ok=%v", c.name, err, c.ok)
		}
	}
}

func TestFrameCountSimplified(t *testing.T) {
	cfg := Config{FFTSize: 16, Hop: 4, WinLen: 16, Window: WindowHann, Convention: ConventionSimplified}
	r := rng.New(1)
	// L = 16 + 3*4 = 28 -> 4 frames.
	res, err := Transform(randReal(r, 28), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrames() != 4 {
		t.Fatalf("frames = %d, want 4", res.NumFrames())
	}
	// Too-short signal yields zero frames, not an error.
	res, err = Transform(randReal(r, 8), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrames() != 0 {
		t.Fatalf("short signal frames = %d, want 0", res.NumFrames())
	}
}

func TestFrameCountTimeInvariantCoversWholeSignal(t *testing.T) {
	cfg := Config{FFTSize: 16, Hop: 4, WinLen: 16, Window: WindowHann, Convention: ConventionTimeInvariant}
	r := rng.New(2)
	res, err := Transform(randReal(r, 30), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.NumFrames(), 8; got != want { // ceil(30/4)
		t.Fatalf("frames = %d, want %d", got, want)
	}
}

func TestRoundTripSimplified(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		cfg := Config{FFTSize: 32, Hop: 8, WinLen: 32, Window: WindowHann, Convention: ConventionSimplified}
		k := 2 + r.Intn(6)
		n := cfg.WinLen + k*cfg.Hop
		x := randReal(r, n)
		res, err := Transform(x, cfg)
		if err != nil {
			return false
		}
		back, err := Inverse(res, n)
		if err != nil {
			return false
		}
		// Sample 0 has zero Hann coverage and is unrecoverable by design.
		for i := 1; i < len(x); i++ {
			if math.Abs(x[i]-back[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripHop75PercentOverlap(t *testing.T) {
	r := rng.New(3)
	cfg := Config{FFTSize: 64, Hop: 16, WinLen: 64, Window: WindowHann, Convention: ConventionSimplified}
	n := cfg.WinLen + 10*cfg.Hop
	x := randReal(r, n)
	res, err := Transform(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Inverse(res, n)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := 1; i < len(x); i++ { // sample 0 is uncovered by design
		if d := math.Abs(x[i] - back[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 1e-9 {
		t.Fatalf("round trip error %v", maxErr)
	}
	if back[0] != 0 {
		t.Fatalf("uncovered sample should be zero, got %v", back[0])
	}
}

func TestInverseRejectsTimeInvariant(t *testing.T) {
	cfg := Config{FFTSize: 16, Hop: 4, WinLen: 16, Window: WindowHann, Convention: ConventionTimeInvariant}
	r := rng.New(4)
	res, err := Transform(randReal(r, 32), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Inverse(res, 32); err == nil {
		t.Fatal("Inverse should reject time-invariant frames")
	}
}

// TestPhaseSkewIdentity verifies the paper's conversion claim: the
// time-invariant frame equals the simplified frame of the c-delayed signal
// multiplied pointwise by the phase-factor matrix e^{+2πi m c / M}.
func TestPhaseSkewIdentity(t *testing.T) {
	r := rng.New(5)
	const (
		m   = 32
		lg  = 32
		hop = 8
		L   = 128
	)
	x := randReal(r, L)
	c := lg / 2

	ti, err := Transform(x, Config{FFTSize: m, Hop: hop, WinLen: lg, Window: WindowHann, Convention: ConventionTimeInvariant})
	if err != nil {
		t.Fatal(err)
	}
	// Delayed signal x2[t] = x[(t-c) mod L].
	x2 := make([]float64, L)
	for i := range x2 {
		x2[i] = x[((i-c)%L+L)%L]
	}
	simp, err := Transform(x2, Config{FFTSize: m, Hop: hop, WinLen: lg, Window: WindowHann, Convention: ConventionSimplified})
	if err != nil {
		t.Fatal(err)
	}
	skew := PhaseSkewFactors(m, lg)
	converted, err := ApplySkew(simp, skew)
	if err != nil {
		t.Fatal(err)
	}
	// Compare frames that exist in both grids and don't wrap in either.
	nCompare := converted.NumFrames()
	if ti.NumFrames() < nCompare {
		nCompare = ti.NumFrames()
	}
	if nCompare < 3 {
		t.Fatalf("too few comparable frames: %d", nCompare)
	}
	for n := 1; n < nCompare-1; n++ {
		for bin := 0; bin < m; bin++ {
			d := cmplx.Abs(ti.Coef[n][bin] - converted.Coef[n][bin])
			if d > 1e-9 {
				t.Fatalf("frame %d bin %d differs by %v after skew conversion", n, bin, d)
			}
		}
	}
}

// TestSkewIsWindowLengthDependent demonstrates the paper's core warning:
// using the phase factors for the wrong stored window length leaves a
// residual phase error.
func TestSkewIsWindowLengthDependent(t *testing.T) {
	right := PhaseSkewFactors(64, 32)
	wrong := PhaseSkewFactors(64, 48)
	var maxDiff float64
	for mth := range right {
		if d := cmplx.Abs(right[mth] - wrong[mth]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 0.5 {
		t.Fatalf("skew factors for different Lg should diverge, max diff %v", maxDiff)
	}
}

func TestApplySkewSizeMismatch(t *testing.T) {
	r := rng.New(6)
	cfg := DefaultConfig()
	res, err := Transform(randReal(r, 512), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplySkew(res, make([]complex128, 3)); err == nil {
		t.Fatal("want size mismatch error")
	}
}

func TestSpectrogramTone(t *testing.T) {
	const (
		m   = 64
		f0  = 7
		L   = 512
		hop = 16
	)
	x := make([]float64, L)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * f0 * float64(i) / m)
	}
	res, err := Transform(x, Config{FFTSize: m, Hop: hop, WinLen: m, Window: WindowHann, Convention: ConventionSimplified})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spectrogram(res)
	if len(spec) == 0 || len(spec[0]) != m/2+1 {
		t.Fatalf("spectrogram shape %dx%d", len(spec), len(spec[0]))
	}
	for n := range spec {
		best := 0
		for bin, p := range spec[n] {
			if p > spec[n][best] {
				best = bin
			}
		}
		if best != f0 {
			t.Fatalf("frame %d: peak at bin %d, want %d", n, best, f0)
		}
	}
}

func TestGabPhaseDerivTone(t *testing.T) {
	const (
		m   = 64
		f0  = 3
		hop = 4
		L   = 512
	)
	x := make([]float64, L)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * f0 * float64(i) / m)
	}
	res, err := Transform(x, Config{FFTSize: m, Hop: hop, WinLen: m, Window: WindowHann, Convention: ConventionSimplified})
	if err != nil {
		t.Fatal(err)
	}
	pd := GabPhaseDeriv(res, 1e-6)
	want := 2 * math.Pi * f0 * hop / float64(m) // phase advance per hop
	for n := 2; n < res.NumFrames()-2; n++ {
		if !pd.Reliable[n][f0] {
			t.Fatalf("frame %d bin %d should be reliable", n, f0)
		}
		if math.Abs(pd.Deriv[n][f0]-want) > 1e-6 {
			t.Fatalf("frame %d: phase deriv %v, want %v", n, pd.Deriv[n][f0], want)
		}
	}
}

func TestGabPhaseDerivFlagsLowMagnitude(t *testing.T) {
	const m = 64
	x := make([]float64, 512)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * 3 * float64(i) / m)
	}
	res, err := Transform(x, Config{FFTSize: m, Hop: 4, WinLen: m, Window: WindowHann, Convention: ConventionSimplified})
	if err != nil {
		t.Fatal(err)
	}
	pd := GabPhaseDeriv(res, 1e-6)
	// Bins far from the tone hold only rounding noise and must be flagged.
	unreliable := 0
	total := 0
	for n := 1; n < res.NumFrames(); n++ {
		for bin := 20; bin < 30; bin++ {
			total++
			if !pd.Reliable[n][bin] {
				unreliable++
			}
		}
	}
	if unreliable < total*9/10 {
		t.Fatalf("only %d/%d far-from-tone bins flagged unreliable", unreliable, total)
	}
}

func TestGabPhaseDerivEmpty(t *testing.T) {
	pd := GabPhaseDeriv(&Result{Cfg: DefaultConfig()}, 1e-6)
	if len(pd.Deriv) != 0 {
		t.Fatal("empty result should give empty derivative")
	}
}

func TestTransformEmptySignal(t *testing.T) {
	res, err := Transform(nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrames() != 0 {
		t.Fatal("empty signal should yield no frames")
	}
}

func BenchmarkTransform(b *testing.B) {
	r := rng.New(1)
	x := randReal(r, 4096)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Transform(x, cfg)
	}
}

func TestRoundTripAllWindows(t *testing.T) {
	// WOLA resynthesis with per-sample normalization is exact for any
	// window with nonzero coverage, not just Hann.
	r := rng.New(41)
	for _, w := range []Window{WindowHann, WindowHamming, WindowRect, WindowGauss} {
		cfg := Config{FFTSize: 32, Hop: 8, WinLen: 32, Window: w, Convention: ConventionSimplified}
		n := cfg.WinLen + 6*cfg.Hop
		x := randReal(r, n)
		res, err := Transform(x, cfg)
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		back, err := Inverse(res, n)
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		start := 0
		if w == WindowHann { // sample 0 uncovered (w[0] = 0)
			start = 1
		}
		for i := start; i < n; i++ {
			if math.Abs(x[i]-back[i]) > 1e-8 {
				t.Fatalf("%v: sample %d error %v", w, i, x[i]-back[i])
			}
		}
	}
}

func TestZeroPaddedAnalysis(t *testing.T) {
	// WinLen < FFTSize zero-pads each frame: round trip still exact and
	// the spectrogram gains frequency interpolation (shape only checked).
	r := rng.New(43)
	cfg := Config{FFTSize: 64, Hop: 8, WinLen: 32, Window: WindowHamming, Convention: ConventionSimplified}
	n := cfg.WinLen + 8*cfg.Hop
	x := randReal(r, n)
	res, err := Transform(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Coef[0]) != 64 {
		t.Fatalf("frame width %d, want 64", len(res.Coef[0]))
	}
	back, err := Inverse(res, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-back[i]) > 1e-8 {
			t.Fatalf("sample %d error %v", i, x[i]-back[i])
		}
	}
}

func TestSkewFactorsUnitModulus(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m := 8 + r.Intn(120)
		lg := 1 + r.Intn(m)
		for _, v := range PhaseSkewFactors(m, lg) {
			if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
