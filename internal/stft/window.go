// Package stft implements the short-time Fourier transform in the two
// conventions the paper contrasts (its Eqs. 5 and 6), the phase-skew factor
// matrix that converts between them, inverse STFT by overlap-add, the
// spectrogram, and a Gabor phase-derivative analog with the low-magnitude
// inaccuracy detection the paper quotes from the LTFAT documentation.
//
// The paper's §IV-A/B document that PyTorch changed its STFT signature at
// v0.4.1 to match Librosa, and that TensorFlow's implementation "imbues a
// delay as well as a phase skew that is dependent on the (stored) window
// length Lg" and "does not consider s circularly". This package implements
// both behaviours explicitly — ConventionTimeInvariant centers the window
// (peak at g[⌊Lg/2⌋], circular extension) and ConventionSimplified anchors
// it at g[0] with truncated frames — so the audit harness can measure the
// exact skew and boundary error a convention mismatch introduces.
package stft

import (
	"fmt"
	"math"
)

// Window identifies an analysis window shape.
type Window int

// Supported windows. Hann is the default for COLA-friendly overlap-add.
const (
	WindowHann Window = iota + 1
	WindowHamming
	WindowRect
	WindowGauss
)

// String implements fmt.Stringer.
func (w Window) String() string {
	switch w {
	case WindowHann:
		return "hann"
	case WindowHamming:
		return "hamming"
	case WindowRect:
		return "rect"
	case WindowGauss:
		return "gauss"
	default:
		return fmt.Sprintf("window(%d)", int(w))
	}
}

// MakeWindow returns the length-n window samples. The periodic variant is
// used (denominator n rather than n-1) so Hann windows satisfy COLA at
// hop = n/2. Gauss uses sigma = n/6.
func MakeWindow(w Window, n int) ([]float64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stft: window length %d must be positive", n)
	}
	out := make([]float64, n)
	switch w {
	case WindowHann:
		for i := range out {
			out[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n))
		}
	case WindowHamming:
		for i := range out {
			out[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n))
		}
	case WindowRect:
		for i := range out {
			out[i] = 1
		}
	case WindowGauss:
		sigma := float64(n) / 6
		c := float64(n-1) / 2
		for i := range out {
			d := (float64(i) - c) / sigma
			out[i] = math.Exp(-0.5 * d * d)
		}
	default:
		return nil, fmt.Errorf("stft: unknown window %d", int(w))
	}
	return out, nil
}

// COLAError returns the maximum deviation of Σ_k w[n-k*hop]² from its mean
// over one hop period, normalized by the mean. Zero means the window/hop
// pair satisfies the constant-overlap-add (COLA) condition for the
// squared-window synthesis used by ISTFT.
func COLAError(win []float64, hop int) float64 {
	if hop <= 0 || len(win) == 0 {
		return math.Inf(1)
	}
	sums := make([]float64, hop)
	for start := 0; start < len(win); start += hop {
		for i := start; i < len(win) && i < start+hop; i++ {
			// Accumulate w[i]² into phase class i mod hop by shifting the
			// window by every multiple of hop.
			_ = i
		}
	}
	// Direct evaluation: for each residue r in [0, hop), sum w[r + j*hop]².
	for r := 0; r < hop; r++ {
		var s float64
		for j := r; j < len(win); j += hop {
			s += win[j] * win[j]
		}
		sums[r] = s
	}
	var mean float64
	for _, s := range sums {
		mean += s
	}
	mean /= float64(hop)
	if mean == 0 {
		return math.Inf(1)
	}
	var dev float64
	for _, s := range sums {
		if d := math.Abs(s - mean); d > dev {
			dev = d
		}
	}
	return dev / mean
}
