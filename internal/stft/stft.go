package stft

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/fft"
	"repro/internal/par"
)

// frameGrain is the number of STFT frames processed per parallel chunk.
// Frames are independent (each writes only its own coefficient row), so the
// fan-out over internal/par is bit-deterministic at any worker count; the
// grain just keeps per-chunk work (~8 FFTs) comfortably above the fork/join
// overhead.
const frameGrain = 8

// Convention selects which of the paper's two STFT definitions is computed.
type Convention int

const (
	// ConventionSimplified is the paper's Eq. 6 ("Simplified Time-Invariant
	// STFT"): the window is anchored at g[0], frames cover s[na .. na+Lg-1],
	// and the signal is NOT treated circularly — only frames fully inside
	// the signal are produced (n in [0, floor((L-Lg)/a)]).
	ConventionSimplified Convention = iota + 1
	// ConventionTimeInvariant is the paper's Eq. 5: the window is centered,
	// with its peak stored at g[floor(Lg/2)], the signal is extended
	// circularly, and one frame is produced per hop across the whole
	// signal. Relative to ConventionSimplified this convention imbues a
	// delay of floor(Lg/2) samples and a per-bin phase factor
	// e^{+2πi·m·floor(Lg/2)/M} — the "phase skew that is dependent on the
	// stored window length" the paper warns about.
	ConventionTimeInvariant
)

// String implements fmt.Stringer.
func (c Convention) String() string {
	switch c {
	case ConventionSimplified:
		return "simplified"
	case ConventionTimeInvariant:
		return "time-invariant"
	default:
		return fmt.Sprintf("convention(%d)", int(c))
	}
}

// Config parameterizes an STFT. The zero value is invalid; fill every field
// or use DefaultConfig.
type Config struct {
	FFTSize    int // M: number of frequency channels (bins)
	Hop        int // a: time step between frames
	WinLen     int // Lg: stored window length, WinLen <= FFTSize
	Window     Window
	Convention Convention
}

// DefaultConfig returns a 256-bin Hann analysis at 64-sample hop in the
// simplified (Librosa-style) convention.
func DefaultConfig() Config {
	return Config{FFTSize: 256, Hop: 64, WinLen: 256, Window: WindowHann, Convention: ConventionSimplified}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.FFTSize <= 0:
		return fmt.Errorf("stft: FFTSize %d must be positive", c.FFTSize)
	case c.Hop <= 0:
		return fmt.Errorf("stft: Hop %d must be positive", c.Hop)
	case c.WinLen <= 0 || c.WinLen > c.FFTSize:
		return fmt.Errorf("stft: WinLen %d must be in (0, FFTSize=%d]", c.WinLen, c.FFTSize)
	case c.Convention != ConventionSimplified && c.Convention != ConventionTimeInvariant:
		return fmt.Errorf("stft: unknown convention %d", int(c.Convention))
	}
	return nil
}

// Result holds STFT coefficients: Coef[n][m] is frame n, frequency bin m,
// with FFTSize bins per frame.
type Result struct {
	Coef [][]complex128
	Cfg  Config
}

// NumFrames returns the number of analysis frames.
func (r *Result) NumFrames() int { return len(r.Coef) }

// Transform computes the STFT of the real signal s under cfg.
func Transform(s []float64, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(s) == 0 {
		return &Result{Coef: nil, Cfg: cfg}, nil
	}
	win, err := MakeWindow(cfg.Window, cfg.WinLen)
	if err != nil {
		return nil, err
	}
	var frames int
	switch cfg.Convention {
	case ConventionSimplified:
		if len(s) < cfg.WinLen {
			frames = 0
		} else {
			frames = (len(s)-cfg.WinLen)/cfg.Hop + 1
		}
	case ConventionTimeInvariant:
		frames = (len(s) + cfg.Hop - 1) / cfg.Hop
	}
	out := make([][]complex128, frames)
	center := cfg.WinLen / 2
	plan := fft.PlanFor(cfg.FFTSize)
	// One flat backing array for every coefficient row: the per-frame
	// kernel transforms its row in place, so the analysis loop performs no
	// per-frame allocation (rcrlint's allochot rule flagged the previous
	// per-frame plan.FFT copy) and rows stay cache-adjacent.
	flat := make([]complex128, frames*cfg.FFTSize)
	// Frame-parallel analysis: every chunk writes only its own disjoint
	// rows of flat/out, so the fan-out stays bit-deterministic.
	par.For(frames, frameGrain, func(nLo, nHi int) {
		for n := nLo; n < nHi; n++ {
			row := flat[n*cfg.FFTSize : (n+1)*cfg.FFTSize]
			analyzeFrame(row, s, win, n, cfg, center, plan)
			out[n] = row
		}
	})
	return &Result{Coef: out, Cfg: cfg}, nil
}

// analyzeFrame fills row (one preallocated FFTSize-length coefficient row)
// with the windowed samples of frame n under cfg's convention and
// transforms it in place. It is the per-frame inner kernel of Transform —
// every frame of every STFT passes through here, so it must not allocate.
//
//rcr:hot
func analyzeFrame(row []complex128, s, win []float64, n int, cfg Config, center int, plan *fft.Plan) {
	for i := range row {
		row[i] = 0
	}
	start := n * cfg.Hop
	switch cfg.Convention {
	case ConventionSimplified:
		// row[l] = s[na+l]·g[l], l in [0, Lg).
		for l := 0; l < cfg.WinLen; l++ {
			row[l] = complex(s[start+l]*win[l], 0)
		}
	case ConventionTimeInvariant:
		// row[(l mod M)] = s[(na+l) mod L]·g[l+center], l in
		// [-center, Lg-center). Negative l wraps in both the FFT
		// buffer (modulation identity) and the signal (circular
		// extension).
		for l := -center; l < cfg.WinLen-center; l++ {
			si := mod(start+l, len(s))
			bi := mod(l, cfg.FFTSize)
			row[bi] = complex(s[si]*win[l+center], 0)
		}
	}
	plan.Do(row, false)
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// PhaseSkewFactors returns the per-bin factor f[m] = e^{+2πi·m·c/M} with
// c = floor(winLen/2) that relates the two conventions: multiplying a
// simplified-convention frame (taken at the time-invariant frame's sample
// positions) by f yields the time-invariant frame. This is the "a priori
// determined matrix of phase factors" the paper describes for converting
// between conventions.
func PhaseSkewFactors(fftSize, winLen int) []complex128 {
	c := winLen / 2
	out := make([]complex128, fftSize)
	for m := range out {
		ang := 2 * math.Pi * float64(m) * float64(c) / float64(fftSize)
		out[m] = cmplx.Exp(complex(0, ang))
	}
	return out
}

// ApplySkew multiplies every frame of r pointwise by factors, returning a
// new Result. It errors if the factor vector does not match FFTSize.
func ApplySkew(r *Result, factors []complex128) (*Result, error) {
	if len(factors) != r.Cfg.FFTSize {
		return nil, fmt.Errorf("stft: %d skew factors for FFTSize %d", len(factors), r.Cfg.FFTSize)
	}
	out := &Result{Cfg: r.Cfg, Coef: make([][]complex128, len(r.Coef))}
	par.For(len(r.Coef), frameGrain, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			frame := r.Coef[n]
			nf := make([]complex128, len(frame))
			for m, v := range frame {
				nf[m] = v * factors[m]
			}
			out.Coef[n] = nf
		}
	})
	return out, nil
}

// Inverse reconstructs a length-n signal from a simplified-convention STFT
// by windowed overlap-add with squared-window normalization. Samples with
// (numerically) zero window coverage — e.g. sample 0 under a periodic Hann
// window, whose first tap is exactly zero — are unrecoverable and left at
// zero, matching Librosa. It returns an error for the time-invariant
// convention; convert such frames with ApplySkew first.
func Inverse(r *Result, n int) ([]float64, error) {
	cfg := r.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Convention != ConventionSimplified {
		return nil, fmt.Errorf("stft: Inverse supports %v only; convert %v frames with ApplySkew first",
			ConventionSimplified, cfg.Convention)
	}
	win, err := MakeWindow(cfg.Window, cfg.WinLen)
	if err != nil {
		return nil, err
	}
	// Stage 1, frame-parallel: invert every frame (the FFT work dominates).
	// Stage 2, serial: overlap-add in frame order, so the floating-point
	// accumulation order — and therefore the result — is identical at any
	// worker count. Overlapping frames write the same samples, so the
	// accumulation itself cannot be fanned out without changing sums.
	frames := len(r.Coef)
	inv := make([][]complex128, frames)
	par.For(frames, frameGrain, func(lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			// The cache wrapper (not the cfg-sized plan) keeps the seed
			// behaviour for hand-built Results whose rows differ from
			// cfg.FFTSize.
			inv[fi] = fft.IFFT(r.Coef[fi])
		}
	})
	sig := make([]float64, n)
	norm := make([]float64, n)
	for fi := 0; fi < frames; fi++ {
		t := inv[fi]
		start := fi * cfg.Hop
		for l := 0; l < cfg.WinLen; l++ {
			idx := start + l
			if idx >= n {
				break
			}
			sig[idx] += real(t[l]) * win[l]
			norm[idx] += win[l] * win[l]
		}
	}
	for i := range sig {
		if norm[i] < 1e-12 {
			sig[i] = 0
			continue
		}
		sig[i] /= norm[i]
	}
	return sig, nil
}

// Spectrogram returns the power spectrogram |X[n][m]|² restricted to the
// nonredundant bins [0, M/2].
func Spectrogram(r *Result) [][]float64 {
	half := r.Cfg.FFTSize/2 + 1
	out := make([][]float64, len(r.Coef))
	par.For(len(r.Coef), frameGrain, func(lo, hi int) {
		for n := lo; n < hi; n++ {
			frame := r.Coef[n]
			row := make([]float64, half)
			for m := 0; m < half; m++ {
				v := frame[m]
				row[m] = real(v)*real(v) + imag(v)*imag(v)
			}
			out[n] = row
		}
	})
	return out
}

// PhaseDeriv is the output of GabPhaseDeriv: the time derivative of the
// STFT phase per (frame, bin), measured in radians per hop, plus a
// reliability mask. Where Reliable is false the coefficient magnitude is
// within relTol of the noise floor and — as the LTFAT documentation the
// paper quotes puts it — "the phase of complex numbers close to the machine
// precision is almost random", so the derivative there is meaningless.
type PhaseDeriv struct {
	Deriv    [][]float64
	Reliable [][]bool
}

// GabPhaseDeriv computes the discrete time-derivative of the STFT phase
// (our analog of LTFAT's gabphasederiv used on the paper's M-GNU-O
// platform). relTol sets the reliability cutoff as a fraction of the
// maximum coefficient magnitude; values at or below relTol·max|X| are
// flagged unreliable.
func GabPhaseDeriv(r *Result, relTol float64) *PhaseDeriv {
	frames := len(r.Coef)
	if frames == 0 {
		return &PhaseDeriv{}
	}
	bins := len(r.Coef[0])
	var maxMag float64
	for _, frame := range r.Coef {
		for _, v := range frame {
			if m := cmplx.Abs(v); m > maxMag {
				maxMag = m
			}
		}
	}
	cutoff := relTol * maxMag
	pd := &PhaseDeriv{
		Deriv:    make([][]float64, frames),
		Reliable: make([][]bool, frames),
	}
	for n := 0; n < frames; n++ {
		pd.Deriv[n] = make([]float64, bins)
		pd.Reliable[n] = make([]bool, bins)
		prev := n - 1
		if prev < 0 {
			prev = 0
		}
		for m := 0; m < bins; m++ {
			cur := r.Coef[n][m]
			prv := r.Coef[prev][m]
			pd.Reliable[n][m] = cmplx.Abs(cur) > cutoff && cmplx.Abs(prv) > cutoff
			d := cmplx.Phase(cur) - cmplx.Phase(prv)
			// Principal-value unwrap of a single step.
			for d > math.Pi {
				d -= 2 * math.Pi
			}
			for d < -math.Pi {
				d += 2 * math.Pi
			}
			pd.Deriv[n][m] = d
		}
	}
	return pd
}
