package prob

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/mat"
)

// This file implements the structural-fingerprint cache: repeated solves of
// same-shape problems — the qos.SolveRobust ladder sharing one column model
// across rungs, batch RRA instances, PSO objective evaluations — reuse
// lowered/compiled forms when the coefficients are identical and warm-start
// the backend from the previous solution when only the coefficients changed.

// Fingerprint identifies a Problem at two precisions. Shape hashes only the
// structure — dimensions, sparsity bookkeeping (row lengths, senses, bound
// finiteness patterns, integrality marks), and the problem kind — so two
// instances of the same model with different coefficients share a Shape.
// Content additionally hashes every coefficient bit pattern, so equal
// Content (with equal Shape) means the problems are numerically identical
// and the compiled backend form can be reused verbatim.
type Fingerprint struct {
	Shape   uint64
	Content uint64
}

// FNV-1a parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// digest feeds one stream of words into both hashes (structure) or the
// content hash alone (values).
type digest struct {
	shape, content uint64
}

func newDigest() *digest { return &digest{shape: fnvOffset, content: fnvOffset} }

func mix(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// structural mixes words into both the shape and content hashes.
func (d *digest) structural(vs ...uint64) {
	for _, v := range vs {
		d.shape = mix(d.shape, v)
		d.content = mix(d.content, v)
	}
}

// value mixes a float's bit pattern into the content hash only.
func (d *digest) value(f float64) {
	d.content = mix(d.content, math.Float64bits(f))
}

func (d *digest) values(fs []float64) {
	d.structural(uint64(len(fs)))
	for _, f := range fs {
		d.value(f)
	}
}

func (d *digest) matrix(m *mat.Matrix) {
	if m == nil {
		d.structural(0, 0)
		return
	}
	d.structural(uint64(m.Rows), uint64(m.Cols))
	for _, f := range m.Data {
		d.value(f)
	}
}

// boundKind classifies a variable's box structurally, matching the cases the
// lp backend's standard-form conversion branches on (both-finite, lower-only,
// upper-only, free).
func boundKind(lo, hi float64) uint64 {
	k := uint64(0)
	if !math.IsInf(lo, -1) {
		k |= 1
	}
	if !math.IsInf(hi, 1) {
		k |= 2
	}
	return k
}

// Fingerprint hashes the problem. See the Fingerprint type for the
// shape/content contract.
func (p *Problem) Fingerprint() Fingerprint {
	d := newDigest()
	if p.Matrix != nil {
		m := p.Matrix
		d.structural(1, uint64(m.Dim), uint64(m.Obj), boolWord(m.PSD), uint64(len(m.A)))
		d.matrix(m.C)
		for _, a := range m.A {
			d.matrix(a)
		}
		d.values(m.B)
		return Fingerprint{Shape: d.shape, Content: d.content}
	}
	d.structural(2, uint64(p.NumVars), boolWord(p.Obj.Maximize), uint64(len(p.Obj.Lin)))
	d.values(p.Obj.Lin)
	d.matrix(p.Obj.Quad)
	d.value(p.Obj.Const)
	d.structural(boolWord(p.Lo != nil), boolWord(p.Hi != nil))
	for j := 0; j < p.NumVars; j++ {
		lo, hi := p.Bound(j)
		d.structural(boundKind(lo, hi))
		d.value(lo)
		d.value(hi)
	}
	d.structural(uint64(len(p.Integer)))
	for _, j := range p.Integer {
		d.structural(uint64(j))
	}
	d.structural(uint64(len(p.Lin)))
	for _, c := range p.Lin {
		d.structural(uint64(c.Sense))
		d.values(c.Coeffs)
		d.value(c.RHS)
	}
	d.structural(uint64(len(p.Quad)))
	for _, c := range p.Quad {
		d.structural(uint64(c.Sense))
		d.matrix(c.P)
		d.values(c.Q)
		d.value(c.R)
	}
	d.structural(uint64(len(p.Bilin)))
	for _, b := range p.Bilin {
		d.structural(uint64(b.W), uint64(b.X), uint64(b.Y))
	}
	return Fingerprint{Shape: d.shape, Content: d.content}
}

func boolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// cacheShards is the fixed fan-out of the fingerprint map. Sixteen shards
// keep the worst case (every goroutine hammering one shard) no worse than
// the historical single mutex while letting a service's concurrent traffic
// over distinct shapes proceed without serializing on one lock.
const cacheShards = 16

// Cache memoizes lowered/compiled forms and prior solutions keyed by
// structural fingerprint. It is safe for concurrent use and sharded by
// shape fingerprint (per-shard mutexes instead of one lock), so concurrent
// service traffic — qosd workers solving many cells at once — doesn't
// serialize on cache lookups; entries are immutable once stored, so readers
// never observe partial updates.
//
// The contract, enforced by Solve:
//   - equal Shape and equal Content → the compiled backend problem is reused
//     verbatim (Result.CacheHit), skipping lowering and compilation;
//   - equal Shape, different Content → the problem is re-lowered, but the
//     previous backend-space solution seeds the new solve (Result.WarmStarted)
//     after a feasibility check appropriate to the backend: a MILP incumbent
//     must be verified feasible for the new instance (a wrong incumbent would
//     prune the true optimum), a QP start must be strictly feasible (the
//     barrier requires it), while an SDP seed needs no check (ADMM converges
//     from any start);
//   - a cached solution that fails its warm-start check — or whose own solve
//     later fails the a-posteriori certificate — is quarantined: evicted
//     once (CacheStats.Quarantined) instead of being re-checked or reused on
//     every subsequent same-shape lookup.
type Cache struct {
	shards [cacheShards]cacheShard
	// noWarm, when set (DisableWarmStarts), stores compiled forms only:
	// solutions are dropped at store time, so no solve is ever seeded by
	// another request's incumbent.
	noWarm atomic.Bool
	// Effectiveness counters live outside the shard locks so Stats never
	// takes all sixteen mutexes and record() never contends with lookups.
	hits, misses, warmStarts, quarantined atomic.Int64
}

// cacheShard is one lock-striped slice of the fingerprint map.
type cacheShard struct {
	mu      sync.Mutex
	entries map[uint64]*cacheEntry
}

// shard returns the shard owning a shape fingerprint. The shape hash is
// FNV-mixed but carries no finalizer, so fold the high bits down before
// masking — adjacent structures must not pile onto one shard.
func (c *Cache) shard(shape uint64) *cacheShard {
	return &c.shards[(shape^(shape>>32)^(shape>>16))&(cacheShards-1)]
}

type cacheEntry struct {
	content uint64
	low     *loweredForm
	// orig is a private clone of the problem whose solve produced this
	// entry. Lowered forms hold recovery closures and cannot travel, so
	// persistence (persist.go) snapshots orig instead and re-lowers it
	// deterministically at load. Nil for entries that predate a snapshot
	// (for example quarantine replacements of loaded-but-rejected state).
	orig *Problem
	// x / xMat are the backend-space solution of the previous solve (before
	// recovery lifting), so their dimensions match the lowered problem that
	// a same-shape instance compiles to.
	x    []float64
	xMat *mat.Matrix
}

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	// Hits counts solves that reused a compiled backend form verbatim.
	Hits int
	// Misses counts solves that lowered and compiled from scratch.
	Misses int
	// WarmStarts counts solves seeded from a previous solution.
	WarmStarts int
	// Quarantined counts cached solutions evicted because they failed
	// warm-start re-verification or an a-posteriori certificate. Each
	// eviction is counted once: the compiled form stays cached, but the
	// poisoned solution is gone, so it is never re-checked (or worse,
	// reused) on later same-shape lookups.
	Quarantined int
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].entries = make(map[uint64]*cacheEntry)
	}
	return c
}

// DisableWarmStarts switches the cache to compiled-forms-only mode: store
// drops solutions, so later solves reuse lowerings and compiled backend
// problems (the expensive part) but are never seeded by another solve's
// incumbent. This is the mode qosd serves traffic in — a warm start from a
// tied-optimum neighbor could steer branch and bound to a different (equally
// optimal) vertex depending on request interleaving, and the service promises
// bit-identical allocations for identical request+seed regardless of worker
// count or arrival order. Nil-safe; call before sharing the cache or at any
// point after (already-stored solutions are evicted lazily by the next store
// of their shape, and existing entries remain safe: warm starts are always
// re-verified). Returns the cache for chaining.
func (c *Cache) DisableWarmStarts() *Cache {
	if c != nil {
		c.noWarm.Store(true)
	}
	return c
}

// Stats returns a snapshot of the counters. Nil-safe.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:        int(c.hits.Load()),
		Misses:      int(c.misses.Load()),
		WarmStarts:  int(c.warmStarts.Load()),
		Quarantined: int(c.quarantined.Load()),
	}
}

// lookup returns the entry for a shape, or nil. Nil-safe.
func (c *Cache) lookup(shape uint64) *cacheEntry {
	if c == nil {
		return nil
	}
	s := c.shard(shape)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.entries[shape]
}

// store records the problem, its lowered form, and the backend-space
// solution for a shape, replacing (never mutating) any previous entry. The
// problem is cloned so later caller mutations cannot leak into the cache or
// its snapshots. In forms-only mode (DisableWarmStarts) the solution is
// dropped and only the lowering is kept. Nil-safe.
func (c *Cache) store(p *Problem, fp Fingerprint, low *loweredForm, x []float64, xMat *mat.Matrix) {
	if c == nil {
		return
	}
	if c.noWarm.Load() {
		x, xMat = nil, nil
	}
	var orig *Problem
	if p != nil {
		orig = p.Clone()
	}
	s := c.shard(fp.Shape)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[fp.Shape] = &cacheEntry{content: fp.Content, low: low, orig: orig, x: x, xMat: xMat}
}

// quarantine evicts the cached solution for a shape — after a warm-start
// re-verification failure or a failed certificate — while keeping the
// compiled lowered form (the form is a function of the problem, not of any
// solver run, so it cannot be poisoned by a bad solve). It reports whether
// a solution was actually evicted; the Quarantined counter advances only
// then, so repeated same-shape failures count once per poisoned solution.
// Nil-safe.
func (c *Cache) quarantine(shape uint64) bool {
	if c == nil {
		return false
	}
	s := c.shard(shape)
	s.mu.Lock()
	ent := s.entries[shape]
	if ent == nil || (ent.x == nil && ent.xMat == nil) {
		s.mu.Unlock()
		return false
	}
	// Entries are immutable once stored (readers hold them outside the
	// lock), so eviction replaces the entry rather than clearing fields.
	s.entries[shape] = &cacheEntry{content: ent.content, low: ent.low, orig: ent.orig}
	s.mu.Unlock()
	c.quarantined.Add(1)
	return true
}

// record updates the effectiveness counters for one solve. Nil-safe.
func (c *Cache) record(hit, warm bool) {
	if c == nil {
		return
	}
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	if warm {
		c.warmStarts.Add(1)
	}
}
