package prob_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/prob"
	"repro/internal/wire"
)

var updateWire = flag.Bool("update-wire", false, "rewrite the golden wire fixtures from current encoder output")

// goldenDir is where the pinned wire-format fixtures live: next to the codec
// primitives in internal/wire, since the bytes pin the frame layout itself,
// not just the prob payload walk.
const goldenDir = "../wire/testdata"

// goldenWireFixtures are the three pinned lowered problems from ISSUE 9:
// an SDP relaxation, its trace-minimization surrogate, and the qos MILP.
func goldenWireFixtures(t *testing.T) map[string]*prob.Problem {
	t.Helper()
	all := wireFixtureProblems(t)
	return map[string]*prob.Problem{
		"tracemin": all["tracemin"],
		"sdp":      all["sdp"],
		"qos_milp": all["qos_milp"],
	}
}

// TestGoldenWireFixtures pins the on-disk byte layout: any codec change that
// alters the bytes of an already-released frame must bump wire.Version and
// regenerate these files deliberately (-update-wire), never silently.
func TestGoldenWireFixtures(t *testing.T) {
	for name, p := range goldenWireFixtures(t) {
		t.Run(name, func(t *testing.T) {
			w := wire.GetWriter()
			defer wire.PutWriter(w)
			p.EncodeWire(w)
			got := w.Bytes()

			path := filepath.Join(goldenDir, name+".bin")
			if *updateWire {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update-wire to generate): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encoded bytes drifted from golden %s: got %d bytes, want %d — if intentional, bump wire.Version and regenerate", path, len(got), len(want))
			}

			// The pinned bytes still decode to the original problem.
			dec, err := prob.DecodeProblem(want, nil)
			if err != nil {
				t.Fatalf("golden fixture no longer decodes: %v", err)
			}
			if !reflect.DeepEqual(dec, p) {
				t.Fatal("golden fixture decodes to a different problem")
			}
		})
	}
}

// TestGoldenWireVersionSkewRejected proves the cross-version contract: a
// frame stamped with a future format version is refused with ErrVersion
// before anything else is believed — even its checksum, which a future
// writer might compute differently.
func TestGoldenWireVersionSkewRejected(t *testing.T) {
	for name := range goldenWireFixtures(t) {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(goldenDir, name+".bin"))
			if err != nil {
				t.Fatalf("read golden (run with -update-wire to generate): %v", err)
			}
			bumped := append([]byte(nil), data...)
			binary.LittleEndian.PutUint16(bumped[4:6], wire.Version+1)
			if _, err := prob.DecodeProblem(bumped, nil); !errors.Is(err, wire.ErrVersion) {
				t.Fatalf("bumped-version decode error = %v, want wire.ErrVersion", err)
			}
		})
	}
}
