package prob_test

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/guard"
	"repro/internal/mat"
	"repro/internal/prob"
	"repro/internal/rng"
	"repro/internal/wire"
)

// wireMILP builds the seeded qos column-generation MILP used across the
// wire tests: binary user-RB-level assignment variables under a power
// budget and per-user minimum rates (the rcrbench qos workload shape).
func wireMILP(seed uint64, jitter float64) *prob.Problem {
	r := rng.New(seed)
	const nU, nRB, nL = 2, 4, 2
	n := nU * nRB * nL
	levels := []float64{0.1, 0.2}
	p := &prob.Problem{NumVars: n, Hi: make([]float64, n)}
	p.Obj.Maximize = true
	p.Obj.Lin = make([]float64, n)
	for u := 0; u < nU; u++ {
		for b := 0; b < nRB; b++ {
			for l := 0; l < nL; l++ {
				i := (u*nRB+b)*nL + l
				p.Obj.Lin[i] = (1 + levels[l]) * (1 + jitter*r.Float64())
				p.Hi[i] = 1
				p.Integer = append(p.Integer, i)
			}
		}
	}
	for b := 0; b < nRB; b++ {
		row := prob.LinCon{Coeffs: make([]float64, n), Sense: prob.LE, RHS: 1}
		for u := 0; u < nU; u++ {
			for l := 0; l < nL; l++ {
				row.Coeffs[(u*nRB+b)*nL+l] = 1
			}
		}
		p.Lin = append(p.Lin, row)
	}
	for u := 0; u < nU; u++ {
		pow := prob.LinCon{Coeffs: make([]float64, n), Sense: prob.LE, RHS: 0.5}
		rate := prob.LinCon{Coeffs: make([]float64, n), Sense: prob.GE, RHS: 0.5}
		for b := 0; b < nRB; b++ {
			for l := 0; l < nL; l++ {
				i := (u*nRB+b)*nL + l
				pow.Coeffs[i] = levels[l]
				rate.Coeffs[i] = 1 + levels[l]
			}
		}
		p.Lin = append(p.Lin, pow, rate)
	}
	return p
}

// wireFixtureProblems returns named problems covering every payload shape:
// the three pinned lowered families (trace-min, SDP, qos MILP) plus
// quadratic, bilinear, and bound-edge variants.
func wireFixtureProblems(t *testing.T) map[string]*prob.Problem {
	t.Helper()
	rs := seededSymmetric(5, 42)
	rmp, err := prob.NewDiagLowRankRMP(rs)
	if err != nil {
		t.Fatal(err)
	}
	tracemin, _, err := prob.Lower(rmp, prob.TraceSurrogate)
	if err != nil {
		t.Fatal(err)
	}
	sdpP, _, err := prob.Lower(rmp, prob.TraceSurrogate, prob.ToSDP)
	if err != nil {
		t.Fatal(err)
	}
	quad := &prob.Problem{
		NumVars: 3,
		Obj: prob.Objective{
			Lin:   []float64{1, -2, 0.5},
			Quad:  &mat.Matrix{Rows: 3, Cols: 3, Data: []float64{2, 0, 0, 0, 2, 0, 0, 0, 2}},
			Const: -1.25,
		},
		Lo: []float64{math.Inf(-1), -5, 0},
		Hi: []float64{math.Inf(1), 5, 10},
		Quad: []prob.QuadCon{{
			P:     &mat.Matrix{Rows: 3, Cols: 3, Data: []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}},
			Q:     []float64{0, 1, 0},
			R:     -4,
			Sense: prob.LE,
		}},
	}
	bilin := &prob.Problem{
		NumVars: 3,
		Obj:     prob.Objective{Lin: []float64{1, 1, 1}},
		Lo:      []float64{0, 0, 0},
		Hi:      []float64{1, 1, 1},
		Bilin:   []prob.Bilinear{{W: 2, X: 0, Y: 1}},
	}
	return map[string]*prob.Problem{
		"tracemin":  tracemin,
		"sdp":       sdpP,
		"qos_milp":  wireMILP(7, 0.25),
		"quadratic": quad,
		"bilinear":  bilin,
	}
}

func TestProblemWireRoundTrip(t *testing.T) {
	for name, p := range wireFixtureProblems(t) {
		t.Run(name, func(t *testing.T) {
			w := wire.GetWriter()
			defer wire.PutWriter(w)
			p.EncodeWire(w)
			if got, want := w.Len(), p.BinarySize(); got != want {
				t.Errorf("encoded %d bytes, BinarySize says %d", got, want)
			}
			got, err := prob.DecodeProblem(w.Bytes(), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, p) {
				t.Errorf("decode(encode(p)) is not element-identical:\ngot  %+v\nwant %+v", got, p)
			}
		})
	}
}

func TestProblemWireToFromStream(t *testing.T) {
	p := wireMILP(3, 0.5)
	var buf bytes.Buffer
	n, err := p.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(p.BinarySize()) {
		t.Errorf("WriteTo wrote %d bytes, BinarySize says %d", n, p.BinarySize())
	}
	var got prob.Problem
	m, err := got.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Errorf("ReadFrom consumed %d bytes, WriteTo wrote %d", m, n)
	}
	if !reflect.DeepEqual(&got, p) {
		t.Errorf("stream round trip drifted:\ngot  %+v\nwant %+v", &got, p)
	}
	// Truncated streams fail typed.
	var half prob.Problem
	if _, err := half.ReadFrom(bytes.NewReader(nil)); !errors.Is(err, wire.ErrTruncated) {
		t.Errorf("empty stream: err = %v, want ErrTruncated", err)
	}
}

func TestProblemDecodeReuseIsAllocationFree(t *testing.T) {
	p := wireMILP(11, 0.25)
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	p.EncodeWire(w)
	data := append([]byte(nil), w.Bytes()...)

	scratch, err := prob.DecodeProblem(data, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		scratch, err = prob.DecodeProblem(data, scratch)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocates %v/op, want 0", allocs)
	}
	if !reflect.DeepEqual(scratch, p) {
		t.Fatal("reused decode drifted from source problem")
	}
}

func TestProblemEncodeReuseIsAllocationFree(t *testing.T) {
	p := wireMILP(11, 0.25)
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	p.EncodeWire(w) // warm the buffer
	allocs := testing.AllocsPerRun(200, func() {
		w.Reset()
		p.EncodeWire(w)
	})
	if allocs != 0 {
		t.Fatalf("steady-state encode allocates %v/op, want 0", allocs)
	}
}

func TestResultWireRoundTrip(t *testing.T) {
	res, err := prob.Solve(wireMILP(5, 0.25), prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != guard.StatusConverged {
		t.Fatalf("fixture solve status %v", res.Status)
	}
	// Backend sub-results are deliberately not on the wire; compare the
	// serialized contract.
	res.LP, res.MILP, res.QP, res.SDP = nil, nil, nil, nil

	fp := wireMILP(5, 0.25).Fingerprint()
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	res.EncodeWire(w, fp)
	if got, want := w.Len(), res.BinarySize(); got != want {
		t.Errorf("encoded %d bytes, BinarySize says %d", got, want)
	}
	got, gotFP, err := prob.DecodeResult(w.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Errorf("header fingerprint %x/%x, want %x/%x", gotFP.Shape, gotFP.Content, fp.Shape, fp.Content)
	}
	if !reflect.DeepEqual(got, res) {
		t.Errorf("decode(encode(res)) is not element-identical:\ngot  %+v\nwant %+v", got, res)
	}

	var buf bytes.Buffer
	if _, err := res.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var streamed prob.Result
	if _, err := streamed.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&streamed, res) {
		t.Error("stream round trip drifted")
	}
}

func TestDecodeProblemTypedFailures(t *testing.T) {
	p := wireMILP(2, 0.25)
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	p.EncodeWire(w)
	good := append([]byte(nil), w.Bytes()...)

	t.Run("kind mismatch", func(t *testing.T) {
		rw := wire.GetWriter()
		defer wire.PutWriter(rw)
		(&prob.Result{Backend: "minlp"}).EncodeWire(rw, prob.Fingerprint{})
		if _, err := prob.DecodeProblem(rw.Bytes(), nil); !errors.Is(err, wire.ErrCorrupt) {
			t.Errorf("result frame decoded as problem: %v", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		padded := append(append([]byte(nil), good...), 0)
		if _, err := prob.DecodeProblem(padded, nil); !errors.Is(err, wire.ErrCorrupt) {
			t.Errorf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("checksum", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[wire.HeaderSize+9] ^= 0x10
		if _, err := prob.DecodeProblem(bad, nil); !errors.Is(err, wire.ErrChecksum) {
			t.Errorf("err = %v, want ErrChecksum", err)
		}
	})
	t.Run("fingerprint", func(t *testing.T) {
		// Repair the checksum after flipping a payload float so the frame
		// is internally consistent but no longer matches its header
		// fingerprints: only the decoded-object re-fingerprint catches it.
		bad := append([]byte(nil), good...)
		i := len(bad) - 16 // inside the last float of the payload
		bad[i] ^= 0x04
		body := bad[:len(bad)-wire.ChecksumSize]
		sum := wire.Checksum(body)
		for j := 0; j < 8; j++ {
			bad[len(body)+j] = byte(sum >> (8 * j))
		}
		_, err := prob.DecodeProblem(bad, nil)
		if !errors.Is(err, wire.ErrFingerprint) {
			t.Errorf("err = %v, want ErrFingerprint", err)
		}
	})
}
