// Persistent mode for the fingerprint cache (DESIGN.md §15): Snapshot dumps
// every shard to a directory of self-describing wire frames with atomic
// rename writes; Load restores them with a layered trust boundary. Lowered
// forms hold recovery closures and cannot travel, so an entry snapshots the
// original Problem instead and Load re-lowers it deterministically — the
// compiled form is a pure function of the problem, so a loaded warm start
// is bit-identical to the in-memory one it was saved from.
//
// Nothing loaded from disk is trusted until it proves itself, in four
// layers: the frame checksum (integrity), typed structural decode
// (structure), the re-fingerprint of the decoded problem against both the
// problem frame and the entry header (identity), and — for incumbents — a
// re-certification against the freshly re-lowered IR (semantics), reusing
// the PR 5 quarantine rule: a solution that fails is dropped on the spot
// and counted, while the re-lowered form (unpoisonable) is kept. A corrupt
// entry is skipped and counted without aborting the rest of its shard.

package prob

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/cert"
	"repro/internal/guard"
	"repro/internal/mat"
	"repro/internal/wire"
)

// SnapshotStats reports what one Snapshot wrote.
type SnapshotStats struct {
	// Entries counts cache entries written across all shard files.
	Entries int
	// Incumbents counts entries whose solution traveled with them.
	Incumbents int
}

// LoadStats reports what one Load restored and what it refused.
type LoadStats struct {
	// Files counts shard files found in the directory.
	Files int
	// Entries counts entries that decoded cleanly and were inserted.
	Entries int
	// Recertified counts loaded incumbents that re-passed certification
	// against their re-lowered problem and were kept as warm starts.
	Recertified int
	// Rejected counts loaded incumbents dropped at the trust boundary:
	// the entry itself was sound, but its solution failed re-certification
	// and was quarantined (form kept, solution gone).
	Rejected int
	// Corrupt counts entries skipped entirely: checksum mismatch, version
	// skew, structural decode failure, or fingerprint drift.
	Corrupt int
}

// snapshotFile names the file holding one shard's entries.
func snapshotFile(dir string, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%02d.rcr", shard))
}

// Snapshot writes the cache's full state to dir, one file per shard,
// creating dir if needed. Each file is written to a temporary name and
// atomically renamed into place, so a crash mid-snapshot leaves the
// previous snapshot intact. Entries stored before this feature (or whose
// problem was unavailable) are skipped. Nil-safe.
func (c *Cache) Snapshot(dir string) (SnapshotStats, error) {
	var st SnapshotStats
	if c == nil {
		return st, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return st, err
	}
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	for i := range c.shards {
		s := &c.shards[i]
		type kv struct {
			shape uint64
			ent   *cacheEntry
		}
		var items []kv
		s.mu.Lock()
		//lint:ignore nondet the map range only collects; snapshot bytes are made iteration-order invariant by the sort below
		for shape, ent := range s.entries {
			if ent.orig != nil {
				items = append(items, kv{shape, ent})
			}
		}
		s.mu.Unlock()
		sort.Slice(items, func(a, b int) bool { return items[a].shape < items[b].shape })

		w.Reset()
		pre := w.BeginFrame(wire.Header{Kind: wire.KindSnapshot, Shape: uint64(i)})
		w.U32(uint32(len(items)))
		w.EndFrame(pre)
		for _, it := range items {
			start := w.BeginFrame(wire.Header{Kind: wire.KindCacheEntry, Shape: it.shape, Content: it.ent.content})
			it.ent.orig.EncodeWire(w)
			w.F64s(it.ent.x)
			writeWireMatrix(w, it.ent.xMat)
			w.EndFrame(start)
			st.Entries++
			if it.ent.x != nil || it.ent.xMat != nil {
				st.Incumbents++
			}
		}

		path := snapshotFile(dir, i)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, w.Bytes(), 0o644); err != nil {
			return st, err
		}
		if err := os.Rename(tmp, path); err != nil {
			return st, err
		}
	}
	return st, nil
}

// Load restores a Snapshot from dir into the cache. A missing directory is
// an empty snapshot, not an error. Already-cached shapes are never
// overwritten (live state wins over disk). Every loaded incumbent is
// re-certified against its re-lowered problem before it may seed a warm
// start; failures are quarantined exactly like a poisoned live entry. In
// forms-only mode (DisableWarmStarts) incumbents are dropped at load
// without touching the recertified/rejected counters. Nil-safe.
func (c *Cache) Load(dir string) (LoadStats, error) {
	var st LoadStats
	if c == nil {
		return st, nil
	}
	for i := range c.shards {
		data, err := os.ReadFile(snapshotFile(dir, i))
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return st, err
		}
		st.Files++
		c.loadShardFile(i, data, &st)
	}
	return st, nil
}

// loadShardFile restores one shard file, counting entries it refuses. The
// file is a snapshot preamble frame followed by its entry frames; once
// framing is lost (a corrupted length or magic), the remaining entries are
// unrecoverable and counted corrupt.
func (c *Cache) loadShardFile(shard int, data []byte, st *LoadStats) {
	preLen, err := wire.FrameLen(data)
	if err != nil {
		return // no countable entries: the preamble never decoded
	}
	h, payload, err := wire.OpenFrame(data)
	if err != nil || h.Kind != wire.KindSnapshot || uint64(shard) != h.Shape {
		return
	}
	r := wire.NewReader(payload)
	count := int(r.U32())
	if r.Err() != nil {
		return
	}
	off := preLen
	for i := 0; i < count; i++ {
		n, err := wire.FrameLen(data[off:])
		if err != nil {
			// Framing lost: everything from here on is unrecoverable.
			st.Corrupt += count - i
			return
		}
		frame := data[off : off+n]
		off += n
		if !c.loadEntry(frame, st) {
			st.Corrupt++
		}
	}
}

// loadEntry decodes, verifies, re-lowers, and (if trusted) inserts one
// entry frame, reporting whether the entry was structurally sound. A sound
// entry whose incumbent fails re-certification still loads — minus its
// solution — mirroring quarantine.
func (c *Cache) loadEntry(frame []byte, st *LoadStats) bool {
	h, payload, err := wire.OpenFrame(frame)
	if err != nil || h.Kind != wire.KindCacheEntry {
		return false
	}
	r := wire.NewReader(payload)
	probBytes := r.FrameBytes()
	if probBytes == nil {
		return false
	}
	orig, err := DecodeProblem(probBytes, nil)
	if err != nil {
		return false
	}
	x := r.F64s(nil)
	xMat := readWireMatrix(&r, nil)
	if r.Err() != nil || r.Remaining() != 0 {
		return false
	}
	// The entry header must agree with the problem it carries: a stitched
	// or cross-copied entry would poison same-shape lookups.
	fp := orig.Fingerprint()
	if fp.Shape != h.Shape || fp.Content != h.Content {
		return false
	}
	low, err := lowerForBackend(orig)
	if err != nil {
		return false
	}
	st.Entries++
	if c.noWarm.Load() {
		x, xMat = nil, nil
	} else if x != nil || xMat != nil {
		if recertifyLoaded(low, x, xMat) {
			st.Recertified++
		} else {
			x, xMat = nil, nil
			st.Rejected++
			c.quarantined.Add(1)
		}
	}
	s := c.shard(h.Shape)
	s.mu.Lock()
	if _, live := s.entries[h.Shape]; !live {
		s.entries[h.Shape] = &cacheEntry{content: h.Content, low: low, orig: orig, x: x, xMat: xMat}
	}
	s.mu.Unlock()
	return true
}

// recertifyLoaded re-runs the load-time slice of the PR 5 certificate on a
// deserialized incumbent against its freshly re-lowered form: structural
// sanity, recomputed primal residuals, integrality, and (for SDP) PSD
// membership, all at the certifier's default tolerances. Objective and
// dual-gap checks need the original backend run and re-run at first use
// instead (warm starts are always re-verified by dispatch).
func recertifyLoaded(low *loweredForm, x []float64, xMat *mat.Matrix) bool {
	tol := cert.Tolerances{}.WithDefaults()
	if low.backend == "sdp" {
		sp := low.sdp
		X := xMat
		if x != nil || X == nil || X.Rows != X.Cols || X.Rows != sp.C.Rows || !guard.AllFinite(X.Data) {
			return false
		}
		// Mirrors certifySDP's primal/psd scaling at the default ADMM
		// tolerance (there is no Options at load time).
		feasTol := tol.Feas + 100*1e-7
		var worst float64
		for i, a := range sp.A {
			var v float64
			for k := range a.Data {
				v += a.Data[k] * X.Data[k]
			}
			if r := math.Abs(v-sp.B[i]) / (1 + math.Abs(sp.B[i])); r > worst {
				worst = r
			}
		}
		if worst > feasTol {
			return false
		}
		var maxAbs float64
		for _, v := range X.Data {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		lo, err := mat.MinEigenvalue(X.Clone().Symmetrize())
		if err != nil {
			return false
		}
		return math.Max(0, -lo)/(1+maxAbs) <= feasTol
	}
	if xMat != nil || x == nil || len(x) != low.final.NumVars || !guard.AllFinite(x) {
		return false
	}
	if low.final.residualAt(x) > tol.Feas {
		return false
	}
	for _, j := range low.final.Integer {
		if math.Abs(x[j]-math.Round(x[j])) > tol.Int {
			return false
		}
	}
	return true
}
