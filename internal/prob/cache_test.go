package prob_test

import (
	"math"
	"testing"

	"repro/internal/guard"
	"repro/internal/prob"
)

// knapsackIR builds the binary knapsack used throughout the cache tests;
// rates parameterizes the objective so content can change under a fixed
// shape.
func knapsackIR(rates []float64) *prob.Problem {
	return &prob.Problem{
		NumVars: 3,
		Obj:     prob.Objective{Maximize: true, Lin: rates},
		Hi:      []float64{1, 1, 1},
		Integer: []int{0, 1, 2},
		Lin:     []prob.LinCon{{Coeffs: []float64{3, 4, 2}, Sense: prob.LE, RHS: 6}},
	}
}

func TestFingerprintShapeContentContract(t *testing.T) {
	base := knapsackIR([]float64{10, 13, 7}).Fingerprint()

	// Identical problems hash identically at both precisions.
	if again := knapsackIR([]float64{10, 13, 7}).Fingerprint(); again != base {
		t.Fatalf("identical problems diverge: %+v vs %+v", base, again)
	}

	// A coefficient change preserves Shape and moves Content.
	coeff := knapsackIR([]float64{10, 13, 8}).Fingerprint()
	if coeff.Shape != base.Shape {
		t.Fatal("coefficient change moved the Shape hash")
	}
	if coeff.Content == base.Content {
		t.Fatal("coefficient change left the Content hash unchanged")
	}

	// Structural edits move the Shape hash.
	structural := map[string]*prob.Problem{
		"extra row": func() *prob.Problem {
			p := knapsackIR([]float64{10, 13, 7})
			p.Lin = append(p.Lin, prob.LinCon{Coeffs: []float64{1, 0, 0}, Sense: prob.LE, RHS: 1})
			return p
		}(),
		"sense flip": func() *prob.Problem {
			p := knapsackIR([]float64{10, 13, 7})
			p.Lin[0].Sense = prob.GE
			return p
		}(),
		"integrality dropped": func() *prob.Problem {
			p := knapsackIR([]float64{10, 13, 7})
			p.Integer = nil
			return p
		}(),
		"maximize flipped": func() *prob.Problem {
			p := knapsackIR([]float64{10, 13, 7})
			p.Obj.Maximize = false
			return p
		}(),
		"bound kind": func() *prob.Problem {
			p := knapsackIR([]float64{10, 13, 7})
			p.Hi[2] = math.Inf(1) // finite → infinite flips the boundKind word
			return p
		}(),
	}
	for name, p := range structural {
		if fp := p.Fingerprint(); fp.Shape == base.Shape {
			t.Errorf("%s: Shape hash unchanged", name)
		}
	}

	// A bound *value* change (same finiteness pattern) is content-only: the
	// lp standard-form conversion branches on finiteness, not magnitude.
	p := knapsackIR([]float64{10, 13, 7})
	p.Hi[2] = 2
	if fp := p.Fingerprint(); fp.Shape != base.Shape || fp.Content == base.Content {
		t.Error("finite bound value change should move Content only")
	}
}

// TestCacheHitOnIdenticalContent pins the first leg of the cache contract:
// equal Shape and Content reuse the compiled backend form verbatim.
func TestCacheHitOnIdenticalContent(t *testing.T) {
	cache := prob.NewCache()
	first, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first solve reported a cache hit")
	}
	second, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("identical re-solve missed the cache")
	}
	if second.Objective != first.Objective || second.Status != first.Status {
		t.Fatalf("cached solve diverged: %+v vs %+v", second, first)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestCacheWarmStartOnShapeMatch pins the second leg: same Shape with new
// coefficients re-lowers but seeds the solve from the previous solution. For
// the minlp backend that seed is the incumbent, which Solve must verify
// feasible against the *new* instance before trusting it.
func TestCacheWarmStartOnShapeMatch(t *testing.T) {
	cache := prob.NewCache()
	if _, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// Same shape, perturbed objective: the previous optimum (0,1,1) is still
	// feasible (constraints unchanged), so it must seed branch and bound.
	res, err := prob.Solve(knapsackIR([]float64{10, 14, 7}), prob.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Fatal("perturbed problem reported a verbatim cache hit")
	}
	if !res.WarmStarted {
		t.Fatal("same-shape re-solve was not warm-started")
	}
	if res.Status != guard.StatusConverged || math.Abs(res.Objective-21) > 1e-9 {
		t.Fatalf("warm-started solve: status %v obj %g, want Converged 21", res.Status, res.Objective)
	}
	st := cache.Stats()
	if st.Hits != 0 || st.Misses != 2 || st.WarmStarts != 1 {
		t.Fatalf("stats = %+v, want 0 hits / 2 misses / 1 warm start", st)
	}
}

// TestCacheDisableWarmStarts pins the forms-only mode qosd serves traffic
// in: compiled forms are still reused verbatim (CacheHit), but no solve is
// ever seeded from another solve's solution, so request interleaving cannot
// steer branch and bound between tied optima.
func TestCacheDisableWarmStarts(t *testing.T) {
	cache := prob.NewCache().DisableWarmStarts()
	if _, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	// Same shape, new coefficients: would warm-start in the default mode
	// (TestCacheWarmStartOnShapeMatch), must not here.
	res, err := prob.Solve(knapsackIR([]float64{10, 14, 7}), prob.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStarted {
		t.Fatal("forms-only cache warm-started a solve")
	}
	if res.Status != guard.StatusConverged || math.Abs(res.Objective-21) > 1e-9 {
		t.Fatalf("forms-only solve: status %v obj %g, want Converged 21", res.Status, res.Objective)
	}
	// Verbatim reuse of the compiled form is still on.
	hit, err := prob.Solve(knapsackIR([]float64{10, 14, 7}), prob.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit {
		t.Fatal("forms-only cache missed an identical re-solve")
	}
	if st := cache.Stats(); st.WarmStarts != 0 {
		t.Fatalf("stats = %+v, want 0 warm starts in forms-only mode", st)
	}
}

// TestCacheInfeasibleIncumbentRejected: when the constraint set tightens so
// the cached solution is no longer feasible, it must NOT seed the solve (an
// infeasible incumbent would prune the true optimum).
func TestCacheInfeasibleIncumbentRejected(t *testing.T) {
	cache := prob.NewCache()
	if _, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{Cache: cache}); err != nil {
		t.Fatal(err) // optimum (0,1,1), weight 6
	}
	tight := knapsackIR([]float64{10, 13, 7})
	tight.Lin[0].RHS = 3 // weight cap 3: (0,1,1) now violates the row
	res, err := prob.Solve(tight, prob.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmStarted {
		t.Fatal("infeasible cached incumbent seeded the solve")
	}
	if res.Status != guard.StatusConverged || math.Abs(res.Objective-10) > 1e-9 {
		t.Fatalf("tightened solve: status %v obj %g, want Converged 10", res.Status, res.Objective)
	}
	// The rejected incumbent is quarantined — evicted and counted once, not
	// re-checked on every same-shape lookup.
	if st := cache.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats = %+v, want Quarantined 1", st)
	}
	// The tightened solve's own (certified) solution replaced the poisoned
	// one, so the next same-shape solve warm-starts from it without another
	// rejection.
	perturbed := knapsackIR([]float64{10, 13, 8})
	perturbed.Lin[0].RHS = 3
	res, err = prob.Solve(perturbed, prob.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WarmStarted {
		t.Fatal("solve after quarantine did not warm-start from the replacement solution")
	}
	if st := cache.Stats(); st.Quarantined != 1 {
		t.Fatalf("stats after recovery = %+v, want Quarantined still 1", st)
	}
}

// TestCacheSDPWarmStart covers the matrix-variable arm: a same-shape
// trace-min re-solve seeds ADMM from the previous iterate.
func TestCacheSDPWarmStart(t *testing.T) {
	cache := prob.NewCache()
	rs1 := mustMat(t, [][]float64{{2, 1}, {1, 2}})
	rs2 := mustMat(t, [][]float64{{2, 0.5}, {0.5, 2}})
	rmp1, err := prob.NewDiagLowRankRMP(rs1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prob.Solve(rmp1, prob.Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	rmp2, err := prob.NewDiagLowRankRMP(rs2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.Solve(rmp2, prob.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WarmStarted {
		t.Fatal("same-shape SDP was not warm-started")
	}
	if math.Abs(res.XMat.At(0, 1)-0.5) > 1e-4 {
		t.Fatalf("warm-started Rc off-diagonal = %g, want 0.5", res.XMat.At(0, 1))
	}
}

// TestNilCacheIsNoop: Solve with no cache behaves identically and the
// nil-safe Cache methods never panic.
func TestNilCacheIsNoop(t *testing.T) {
	var c *prob.Cache
	if st := c.Stats(); st != (prob.CacheStats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
	res, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || res.WarmStarted {
		t.Fatalf("cacheless solve claims reuse: %+v", res)
	}
}
