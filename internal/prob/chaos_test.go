//go:build faultinject

package prob_test

// Chaos soak suite for the a-posteriori certifier (build tag: faultinject;
// ci.sh runs it as a dedicated stage). Every solver backend is run under
// every internal-corruption mode from internal/faultinject — seeded
// bit-flips, relative perturbations, forged convergence — injected through
// the prob.Options.Tamper seam. The contract pinned here, for every fired
// corruption, is:
//
//	the corruption is detected (certificate verdict fail recorded in the
//	Trail) · the poisoned cache entry is quarantined · the final result is
//	either typed-degraded or a certified pass whose objective matches the
//	clean reference — a silently-wrong answer is never accepted
//
// and, because injection is keyed off solution bits (never call order or
// wall-clock), the full outcome matrix is bit-identical at RCR_WORKERS=1
// and 8.

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/cert"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/par"
	"repro/internal/prob"
)

// chaosFixture is one backend's problem instance plus the knob that makes a
// run interruptible (the premature-convergence mode forges Converged onto a
// genuinely incomplete run).
type chaosFixture struct {
	name      string
	make      func(t *testing.T) *prob.Problem
	opts      func() prob.Options
	interrupt func(o *prob.Options)
}

func chaosFixtures() []chaosFixture {
	return []chaosFixture{
		{
			name: "minlp",
			make: func(t *testing.T) *prob.Problem { return knapsackIR([]float64{10, 13, 7}) },
			opts: func() prob.Options { return prob.Options{} },
			// MaxNodes 1 stops branch and bound before any incumbent exists.
			interrupt: func(o *prob.Options) { o.MaxNodes = 1 },
		},
		{
			name: "lp",
			make: func(t *testing.T) *prob.Problem {
				p := knapsackIR([]float64{10, 13, 7})
				p.Integer = nil
				return p
			},
			opts: func() prob.Options { return prob.Options{} },
			interrupt: func(o *prob.Options) {
				// The relaxation solves in one pivot: cancel before the first.
				o.Budget = faultinject.Plan{Seed: 1, CancelAtIter: 0}.Budget()
			},
		},
		{
			name: "qp",
			make: func(t *testing.T) *prob.Problem {
				// min x² - 2x over [0, 3]: minimizer x = 1, value -1.
				return &prob.Problem{
					NumVars: 1,
					Obj:     prob.Objective{Quad: mustMat(t, [][]float64{{2}}), Lin: []float64{-2}},
					Hi:      []float64{3},
				}
			},
			opts: func() prob.Options { return prob.Options{X0: []float64{0.5}} },
			interrupt: func(o *prob.Options) {
				o.Budget = faultinject.Plan{Seed: 1, CancelAtIter: 1}.Budget()
			},
		},
		{
			name: "sdp",
			make: func(t *testing.T) *prob.Problem {
				rmp, err := prob.NewDiagLowRankRMP(mustMat(t, [][]float64{{2, 1}, {1, 2}}))
				if err != nil {
					t.Fatal(err)
				}
				return rmp
			},
			opts: func() prob.Options { return prob.Options{} },
			interrupt: func(o *prob.Options) {
				o.Budget = faultinject.Plan{Seed: 1, CancelAtIter: 1}.Budget()
			},
		},
	}
}

// chaosTamper adapts a faultinject corruption plan to the Tamper seam. The
// vector modes route through plan.CorruptVector (input-bit-keyed, so the
// same solution is always corrupted regardless of worker count); the
// premature mode forges Converged onto any non-converged result — that
// fault lives at the status level, not in the iterate.
func chaosTamper(plan faultinject.Plan, fired *bool) func(*prob.Result) {
	return func(r *prob.Result) {
		if plan.Corrupt == faultinject.CorruptPremature {
			if r.Status != guard.StatusConverged {
				r.Status = guard.StatusConverged
				*fired = true
			}
			return
		}
		if r.XMat != nil {
			bad := r.XMat.Clone()
			if plan.CorruptVector(bad.Data) {
				*fired = true
				r.XMat = bad
				if r.SDP != nil {
					cp := *r.SDP
					cp.X = bad
					r.SDP = &cp
				}
			}
			return
		}
		if r.X != nil && plan.CorruptVector(r.X) {
			*fired = true
		}
	}
}

// chaosOutcome is the bit-exact summary of one injected run, compared
// verbatim across worker counts.
type chaosOutcome struct {
	Case        string
	Fired       bool
	NilResult   bool
	Err         string
	Status      guard.Status
	Verdict     string
	Retries     int
	Objective   uint64 // Float64bits: "identical" here means identical
	Residual    uint64
	Trail       []string
	Quarantined int
	WarmStarted bool
}

// runChaosMatrix executes every fixture × corruption mode, asserting the
// detection contract case by case, and returns the outcome matrix for the
// worker-invariance comparison.
func runChaosMatrix(t *testing.T) []chaosOutcome {
	t.Helper()
	modes := []faultinject.CorruptMode{
		faultinject.CorruptBitFlip,
		faultinject.CorruptPerturb,
		faultinject.CorruptPremature,
	}
	var out []chaosOutcome
	for fi, fx := range chaosFixtures() {
		// Clean reference: the answer any certified-pass run must reproduce.
		ref, err := prob.Solve(fx.make(t), fx.opts())
		if err != nil || ref.Status != guard.StatusConverged {
			t.Fatalf("%s: clean reference solve failed: %v %v", fx.name, ref, err)
		}
		for mi, mode := range modes {
			label := fx.name + "/" + mode.String()
			plan := faultinject.Plan{
				Seed:         0xc4a05 ^ uint64(16*fi+mi),
				CancelAtIter: -1,
				Corrupt:      mode,
				CorruptRate:  1,
			}
			opts := fx.opts()
			var cache *prob.Cache
			if mode == faultinject.CorruptPremature {
				// Forged convergence needs a genuinely interrupted run; no
				// cache, so no warm start quietly completes it.
				fx.interrupt(&opts)
			} else {
				// Pre-warm a cache with a certified solution so the
				// corruption also exercises the quarantine path.
				cache = prob.NewCache()
				warm := fx.opts()
				warm.Cache = cache
				if _, err := prob.Solve(fx.make(t), warm); err != nil {
					t.Fatalf("%s: cache pre-warm failed: %v", label, err)
				}
				opts.Cache = cache
			}
			fired := false
			opts.Tamper = chaosTamper(plan, &fired)
			res, err := prob.Solve(fx.make(t), opts)

			oc := chaosOutcome{Case: label, Fired: fired, Quarantined: cache.Stats().Quarantined}
			if err != nil {
				oc.Err = err.Error()
			}
			if res == nil {
				oc.NilResult = true
				if err == nil {
					t.Errorf("%s: nil result with nil error", label)
				}
			} else {
				oc.Status = res.Status
				oc.Objective = math.Float64bits(res.Objective)
				oc.Residual = math.Float64bits(res.Residual)
				oc.Trail = res.Trail
				oc.WarmStarted = res.WarmStarted
				if res.Cert != nil {
					oc.Verdict = res.Cert.String()
					oc.Retries = res.Cert.Retries
				}
			}
			out = append(out, oc)

			if !fired {
				t.Errorf("%s: corruption never fired (rate 1)", label)
				continue
			}
			// The universal safety clause: a converged result must carry a
			// passing certificate AND reproduce the clean reference — the
			// suite's whole point is that no other converged result leaves
			// Solve.
			if res != nil && res.Status == guard.StatusConverged {
				if res.Cert == nil || res.Cert.Verdict != cert.VerdictPass {
					t.Errorf("%s: converged without a passing certificate: %v", label, res.Cert)
				}
				if math.Abs(res.Objective-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
					t.Errorf("%s: SILENTLY WRONG: converged objective %g, clean reference %g",
						label, res.Objective, ref.Objective)
				}
			} else if err == nil {
				t.Errorf("%s: degraded result returned nil error", label)
			}
			// Vector corruption at rate 1 poisons every escalation rung too:
			// the ladder must exhaust, record its verdict, and quarantine the
			// pre-warmed cache entry.
			if mode != faultinject.CorruptPremature {
				if res == nil || res.Cert == nil || res.Cert.Verdict != cert.VerdictFail {
					t.Errorf("%s: rate-1 corruption not detected: %+v", label, res)
					continue
				}
				if !trailHas(res, "cert:fail(") {
					t.Errorf("%s: trail missing certificate verdict: %v", label, res.Trail)
				}
				if res.Status == guard.StatusConverged || res.Status == guard.StatusOK {
					t.Errorf("%s: detected corruption left status %v", label, res.Status)
				}
				if st := cache.Stats(); st.Quarantined == 0 {
					t.Errorf("%s: poisoned cache entry not quarantined: %+v", label, st)
				}
			}
		}
	}
	return out
}

// TestChaosSoak runs the full corruption matrix at RCR_WORKERS=1 and 8 and
// requires bit-identical outcomes: statuses, verdicts, trails, objective and
// residual bit patterns, quarantine counters.
func TestChaosSoak(t *testing.T) {
	t.Setenv(par.EnvWorkers, "1")
	serial := runChaosMatrix(t)
	t.Setenv(par.EnvWorkers, "8")
	wide := runChaosMatrix(t)
	if !reflect.DeepEqual(serial, wide) {
		for i := range serial {
			if i < len(wide) && !reflect.DeepEqual(serial[i], wide[i]) {
				t.Errorf("workers 1 vs 8 diverge at %s:\n  1: %+v\n  8: %+v",
					serial[i].Case, serial[i], wide[i])
			}
		}
		t.Fatal("chaos outcomes are not worker-count invariant")
	}
}
