package prob_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/guard"
	"repro/internal/prob"
)

// recertFixture solves a small column MILP honestly and returns the problem
// and its certified result, the raw material for tamper tests.
func recertFixture(t *testing.T) (*prob.Problem, *prob.Result) {
	t.Helper()
	p := wireFixtureProblems(t)["qos_milp"]
	res, err := prob.Solve(p, prob.Options{Budget: guard.Budget{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != guard.StatusConverged {
		t.Fatalf("fixture solve ended %v", res.Status)
	}
	return p, res
}

// TestRecertifyAcceptsHonest: an honest converged result crosses the
// boundary, including after a wire round trip.
func TestRecertifyAcceptsHonest(t *testing.T) {
	p, res := recertFixture(t)
	if err := prob.Recertify(p, res); err != nil {
		t.Fatalf("honest result rejected: %v", err)
	}
	var buf []byte
	{
		var back prob.Result
		n, err := res.WriteTo(writerFunc(func(b []byte) (int, error) {
			buf = append(buf, b...)
			return len(b), nil
		}))
		if err != nil || n == 0 {
			t.Fatalf("encode: %v", err)
		}
		dec, _, err := prob.DecodeResult(buf, &back)
		if err != nil {
			t.Fatal(err)
		}
		if err := prob.Recertify(p, dec); err != nil {
			t.Fatalf("honest result rejected after wire round trip: %v", err)
		}
	}
}

// writerFunc adapts a closure to io.Writer.
type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }

// TestRecertifyRejectsTampering: every way a remote reply can lie — damaged
// point, forged status with no point, wrong objective, broken feasibility
// or integrality — is a typed ErrRecertify.
func TestRecertifyRejectsTampering(t *testing.T) {
	p, honest := recertFixture(t)
	clone := func() *prob.Result {
		c := *honest
		c.X = append([]float64(nil), honest.X...)
		return &c
	}
	cases := map[string]func(*prob.Result){
		"bitflip coordinate": func(r *prob.Result) {
			for i, v := range r.X {
				if v != 0 {
					r.X[i] = math.Float64frombits(math.Float64bits(v) ^ (1 << 51))
					return
				}
			}
		},
		"perturbed point":    func(r *prob.Result) { r.X[0] += 0.2 },
		"inflated objective": func(r *prob.Result) { r.Objective *= 1.5 },
		"nan point":          func(r *prob.Result) { r.X[len(r.X)-1] = math.NaN() },
		"missing point":      func(r *prob.Result) { r.X = nil },
		"short point":        func(r *prob.Result) { r.X = r.X[:len(r.X)-1] },
	}
	for name, tamper := range cases {
		t.Run(name, func(t *testing.T) {
			r := clone()
			tamper(r)
			err := prob.Recertify(p, r)
			if err == nil {
				t.Fatal("tampered result crossed the trust boundary")
			}
			if !errors.Is(err, prob.ErrRecertify) {
				t.Fatalf("error %v does not wrap ErrRecertify", err)
			}
		})
	}

	t.Run("non-converged claim", func(t *testing.T) {
		r := clone()
		r.Status = guard.StatusMaxIter
		if err := prob.Recertify(p, r); !errors.Is(err, prob.ErrRecertify) {
			t.Fatalf("non-converged status recertified: %v", err)
		}
	})
	t.Run("nil result", func(t *testing.T) {
		if err := prob.Recertify(p, nil); !errors.Is(err, prob.ErrRecertify) {
			t.Fatalf("nil result recertified: %v", err)
		}
	})
}
