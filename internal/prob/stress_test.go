package prob_test

// Concurrency stress for the cache/certifier interplay: many goroutines
// share one Cache across hit, miss, warm-start, and quarantine paths while a
// deterministic subset of solves is corrupted through the Tamper seam. Run
// under -race (ci.sh does), this pins that quarantine never poisons a
// concurrent clean solve — a corrupted answer is never stored, so warm
// starts only ever come from certified solutions — and that the stats
// counters stay coherent.

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cert"
	"repro/internal/guard"
	"repro/internal/prob"
)

func TestConcurrentSolvesSharedCache(t *testing.T) {
	// Three same-shape knapsack variants (content churn → warm starts) with
	// known optima; repeats of the same rates exercise verbatim hits.
	type variant struct {
		rates []float64
		opt   float64
	}
	vars := []variant{
		{[]float64{10, 13, 7}, 20}, // (0,1,1)
		{[]float64{10, 14, 7}, 21}, // (0,1,1)
		{[]float64{12, 13, 7}, 20}, // (0,1,1); (1,0,1) ties at 19
	}
	cache := prob.NewCache()
	const goroutines = 8
	const iters = 24
	var wg sync.WaitGroup
	var corrupted, clean atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := vars[(g+i)%len(vars)]
				opts := prob.Options{Cache: cache}
				poison := (g*iters+i)%5 == 0
				if poison {
					// Hand back a known-infeasible point; MaxRetries -1 keeps
					// the ladder off so the stress stays fast and every
					// poisoned solve ends in a typed degradation.
					opts.Cert = prob.CertConfig{MaxRetries: -1}
					opts.Tamper = func(r *prob.Result) {
						if r.X != nil {
							r.X = []float64{1, 1, 1}
						}
					}
				}
				res, err := prob.Solve(knapsackIR(v.rates), opts)
				if res == nil {
					t.Errorf("goroutine %d iter %d: nil result (err %v)", g, i, err)
					continue
				}
				if poison {
					corrupted.Add(1)
					if err == nil || res.Status == guard.StatusConverged {
						t.Errorf("goroutine %d iter %d: poisoned solve accepted: %v %v", g, i, res.Status, err)
					}
					if res.Cert == nil || res.Cert.Verdict != cert.VerdictFail {
						t.Errorf("goroutine %d iter %d: poisoned solve certificate %v", g, i, res.Cert)
					}
					continue
				}
				clean.Add(1)
				if err != nil {
					t.Errorf("goroutine %d iter %d: clean solve failed: %v", g, i, err)
					continue
				}
				// The safety property under concurrent quarantine: every
				// clean solve converges to its variant's true optimum with a
				// passing certificate, no matter which poisoned entries were
				// being evicted around it.
				if res.Status != guard.StatusConverged || math.Abs(res.Objective-v.opt) > 1e-9 {
					t.Errorf("goroutine %d iter %d: rates %v → status %v obj %g, want Converged %g",
						g, i, v.rates, res.Status, res.Objective, v.opt)
				}
				if res.Cert == nil || res.Cert.Verdict != cert.VerdictPass {
					t.Errorf("goroutine %d iter %d: clean solve certificate %v", g, i, res.Cert)
				}
			}
		}(g)
	}
	wg.Wait()
	st := cache.Stats()
	if total := int(corrupted.Load() + clean.Load()); st.Hits+st.Misses != total {
		t.Errorf("stats %+v: hits+misses = %d, want %d (one record per solve)", st, st.Hits+st.Misses, total)
	}
	if st.Hits == 0 || st.WarmStarts == 0 {
		t.Errorf("stress never exercised reuse: %+v", st)
	}
	if st.Quarantined == 0 {
		t.Errorf("stress never exercised quarantine: %+v", st)
	}
}
