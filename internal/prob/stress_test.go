package prob_test

// Concurrency stress for the cache/certifier interplay: many goroutines
// share one Cache across hit, miss, warm-start, and quarantine paths while a
// deterministic subset of solves is corrupted through the Tamper seam. Run
// under -race (ci.sh does), this pins that quarantine never poisons a
// concurrent clean solve — a corrupted answer is never stored, so warm
// starts only ever come from certified solutions — and that the stats
// counters stay coherent.

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cert"
	"repro/internal/guard"
	"repro/internal/prob"
)

func TestConcurrentSolvesSharedCache(t *testing.T) {
	// Three same-shape knapsack variants (content churn → warm starts) with
	// known optima; repeats of the same rates exercise verbatim hits.
	type variant struct {
		rates []float64
		opt   float64
	}
	vars := []variant{
		{[]float64{10, 13, 7}, 20}, // (0,1,1)
		{[]float64{10, 14, 7}, 21}, // (0,1,1)
		{[]float64{12, 13, 7}, 20}, // (0,1,1); (1,0,1) ties at 19
	}
	cache := prob.NewCache()
	const goroutines = 8
	const iters = 24
	var wg sync.WaitGroup
	var corrupted, clean atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := vars[(g+i)%len(vars)]
				opts := prob.Options{Cache: cache}
				poison := (g*iters+i)%5 == 0
				if poison {
					// Hand back a known-infeasible point; MaxRetries -1 keeps
					// the ladder off so the stress stays fast and every
					// poisoned solve ends in a typed degradation.
					opts.Cert = prob.CertConfig{MaxRetries: -1}
					opts.Tamper = func(r *prob.Result) {
						if r.X != nil {
							r.X = []float64{1, 1, 1}
						}
					}
				}
				res, err := prob.Solve(knapsackIR(v.rates), opts)
				if res == nil {
					t.Errorf("goroutine %d iter %d: nil result (err %v)", g, i, err)
					continue
				}
				if poison {
					corrupted.Add(1)
					if err == nil || res.Status == guard.StatusConverged {
						t.Errorf("goroutine %d iter %d: poisoned solve accepted: %v %v", g, i, res.Status, err)
					}
					if res.Cert == nil || res.Cert.Verdict != cert.VerdictFail {
						t.Errorf("goroutine %d iter %d: poisoned solve certificate %v", g, i, res.Cert)
					}
					continue
				}
				clean.Add(1)
				if err != nil {
					t.Errorf("goroutine %d iter %d: clean solve failed: %v", g, i, err)
					continue
				}
				// The safety property under concurrent quarantine: every
				// clean solve converges to its variant's true optimum with a
				// passing certificate, no matter which poisoned entries were
				// being evicted around it.
				if res.Status != guard.StatusConverged || math.Abs(res.Objective-v.opt) > 1e-9 {
					t.Errorf("goroutine %d iter %d: rates %v → status %v obj %g, want Converged %g",
						g, i, v.rates, res.Status, res.Objective, v.opt)
				}
				if res.Cert == nil || res.Cert.Verdict != cert.VerdictPass {
					t.Errorf("goroutine %d iter %d: clean solve certificate %v", g, i, res.Cert)
				}
			}
		}(g)
	}
	wg.Wait()
	st := cache.Stats()
	if total := int(corrupted.Load() + clean.Load()); st.Hits+st.Misses != total {
		t.Errorf("stats %+v: hits+misses = %d, want %d (one record per solve)", st, st.Hits+st.Misses, total)
	}
	if st.Hits == 0 || st.WarmStarts == 0 {
		t.Errorf("stress never exercised reuse: %+v", st)
	}
	if st.Quarantined == 0 {
		t.Errorf("stress never exercised quarantine: %+v", st)
	}
}

// knapsackNIR builds an n-item knapsack IR: each distinct n is a distinct
// Shape fingerprint (so the stress spreads across cache shards), while
// different rate vectors at one n collide on Shape and differ on Content.
func knapsackNIR(n int, bump float64) *prob.Problem {
	rates := make([]float64, n)
	weights := make([]float64, n)
	hi := make([]float64, n)
	ints := make([]int, n)
	for i := 0; i < n; i++ {
		rates[i] = float64(5+i) + bump
		weights[i] = float64(1 + i%3)
		hi[i] = 1
		ints[i] = i
	}
	return &prob.Problem{
		NumVars: n,
		Obj:     prob.Objective{Maximize: true, Lin: rates},
		Hi:      hi,
		Integer: ints,
		Lin:     []prob.LinCon{{Coeffs: weights, Sense: prob.LE, RHS: float64(n)}},
	}
}

// TestShardedCacheStress hammers the sharded cache from 8 goroutines over
// distinct shapes (spread across shards) and colliding fingerprints (same
// shape, different content), then re-runs the identical workload serially
// and compares the CacheStats totals. The workload is phase-structured so
// the invariant counters are interleaving-independent:
//
//	phase 1 — clean solves over every (shape, content) pair, repeats
//	  included, so hits, misses, and warm starts are all exercised;
//	phase 2 — every goroutine re-solves every shape with a Tampered
//	  (infeasible) result: certification fails, and the phase-1 solution
//	  of each shape must be evicted exactly once no matter how many
//	  goroutines race to quarantine it (quarantine-once semantics).
func TestShardedCacheStress(t *testing.T) {
	const (
		goroutines = 8
		shapes     = 8 // n = 3..10 → 8 distinct Shape fingerprints
		variants   = 3
		rounds     = 2
	)
	run := func(parallel bool) (prob.CacheStats, int) {
		cache := prob.NewCache()
		var solves atomic.Int64
		phase1 := func(g int) {
			for round := 0; round < rounds; round++ {
				for s := 0; s < shapes; s++ {
					v := (g + round + s) % variants
					res, err := prob.Solve(knapsackNIR(3+s, float64(v)), prob.Options{Cache: cache})
					solves.Add(1)
					if err != nil || res == nil || res.Status != guard.StatusConverged {
						t.Errorf("phase1 g%d shape%d v%d: status %v err %v", g, s, v, statusOf(res), err)
					}
				}
			}
		}
		phase2 := func(g int) {
			for s := 0; s < shapes; s++ {
				opts := prob.Options{
					Cache: cache,
					Cert:  prob.CertConfig{MaxRetries: -1},
					Tamper: func(r *prob.Result) {
						if r.X != nil {
							for i := range r.X {
								r.X[i] = 2 // violates the 0/1 box on every item
							}
						}
					},
				}
				res, err := prob.Solve(knapsackNIR(3+s, 0), opts)
				solves.Add(1)
				if err == nil || res == nil || res.Status == guard.StatusConverged {
					t.Errorf("phase2 g%d shape%d: poisoned solve accepted (status %v err %v)", g, s, statusOf(res), err)
				}
			}
		}
		fanout := func(phase func(int)) {
			if !parallel {
				for g := 0; g < goroutines; g++ {
					phase(g)
				}
				return
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					phase(g)
				}(g)
			}
			wg.Wait()
		}
		fanout(phase1)
		fanout(phase2)
		// Post-poison recovery: every shape solves clean again — the
		// quarantine evicted solutions, never the compiled forms, and no
		// poisoned answer leaked into the cache.
		for s := 0; s < shapes; s++ {
			res, err := prob.Solve(knapsackNIR(3+s, 0), prob.Options{Cache: cache})
			solves.Add(1)
			if err != nil || res.Status != guard.StatusConverged {
				t.Errorf("post-poison shape%d: status %v err %v", s, statusOf(res), err)
			}
		}
		return cache.Stats(), int(solves.Load())
	}

	serialStats, serialSolves := run(false)
	parStats, parSolves := run(true)

	if parSolves != serialSolves {
		t.Fatalf("workloads diverged: %d parallel vs %d serial solves", parSolves, serialSolves)
	}
	// One record per solve, sharded or not.
	if got, want := parStats.Hits+parStats.Misses, parSolves; got != want {
		t.Errorf("parallel hits+misses = %d, want %d (stats %+v)", got, want, parStats)
	}
	if got, want := serialStats.Hits+serialStats.Misses, serialSolves; got != want {
		t.Errorf("serial hits+misses = %d, want %d (stats %+v)", got, want, serialStats)
	}
	// Quarantine-once: phase 2 poisons every shape from 8 goroutines at
	// once, but each shape holds exactly one phase-1 solution, so exactly
	// `shapes` evictions happen in both runs.
	if parStats.Quarantined != shapes || serialStats.Quarantined != shapes {
		t.Errorf("quarantined parallel=%d serial=%d, want %d in both",
			parStats.Quarantined, serialStats.Quarantined, shapes)
	}
	if parStats.WarmStarts == 0 || serialStats.WarmStarts == 0 {
		t.Errorf("stress never warm-started: parallel %+v serial %+v", parStats, serialStats)
	}
	if parStats.Hits == 0 || serialStats.Hits == 0 {
		t.Errorf("stress never hit verbatim: parallel %+v serial %+v", parStats, serialStats)
	}
}

// statusOf is a nil-safe status reader for error messages.
func statusOf(r *prob.Result) guard.Status {
	if r == nil {
		return guard.StatusOK
	}
	return r.Status
}
