package prob_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/prob"
	"repro/internal/wire"
)

// wireTypedError reports whether err is one of the codec's declared
// sentinels — the full contract on arbitrary input: a typed refusal or a
// clean decode, never a panic or an anonymous error.
func wireTypedError(err error) bool {
	for _, sentinel := range []error{
		wire.ErrTruncated, wire.ErrBadMagic, wire.ErrVersion,
		wire.ErrChecksum, wire.ErrCorrupt, wire.ErrFingerprint,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// fuzzSeeds feeds the corpus: the golden fixtures plus degenerate prefixes.
func fuzzSeeds(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join(goldenDir, "*.bin"))
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("RCRW"))
}

func FuzzDecodeProblem(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := prob.DecodeProblem(data, nil)
		if err != nil {
			if !wireTypedError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		// Accepted input must be the canonical encoding of what it decoded
		// to: re-encoding reproduces the input bit for bit, so no two byte
		// strings ever alias one problem.
		w := wire.GetWriter()
		defer wire.PutWriter(w)
		p.EncodeWire(w)
		if !bytes.Equal(w.Bytes(), data) {
			t.Fatalf("accepted non-canonical encoding: %d in, %d re-encoded", len(data), w.Len())
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	// The golden files hold Problem frames; they still make useful Result
	// seeds (same framing, wrong kind) alongside one genuine Result frame.
	fuzzSeeds(f)
	res := &prob.Result{X: []float64{1, 0.5}, Objective: 2.25, Backend: "milp"}
	w := wire.GetWriter()
	res.EncodeWire(w, prob.Fingerprint{Shape: 7, Content: 9})
	f.Add(append([]byte(nil), w.Bytes()...))
	wire.PutWriter(w)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, fp, err := prob.DecodeResult(data, nil)
		if err != nil {
			if !wireTypedError(err) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		w := wire.GetWriter()
		defer wire.PutWriter(w)
		dec.EncodeWire(w, fp)
		if !bytes.Equal(w.Bytes(), data) {
			t.Fatalf("accepted non-canonical encoding: %d in, %d re-encoded", len(data), w.Len())
		}
		rt, rtFp, err := prob.DecodeResult(w.Bytes(), nil)
		if err != nil || rtFp != fp || !reflect.DeepEqual(rt, dec) {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}
