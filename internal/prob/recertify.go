package prob

// Recertify is the trust boundary for results that crossed a process or
// machine boundary (DESIGN.md §16). The wire layer's checksum, typed
// decode, and fingerprint checks prove a reply is *intact*; they cannot
// prove it is *true* — a worker with corrupted memory (or a tampered one)
// can produce a perfectly well-formed frame around a wrong answer. Before a
// coordinator merges a remote result it therefore re-runs the semantic
// slice of the certificate against its own copy of the problem: primal
// feasibility recomputed from the IR, integrality of incumbents, and
// objective reproduction at the returned point. This mirrors what the
// persistent cache does to loaded snapshots (persist.go) — remote workers
// and disk are the same kind of untrusted source.

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cert"
	"repro/internal/guard"
)

// ErrRecertify is wrapped by every recertification failure, so a
// coordinator can route "worker lied" (quarantine, breaker, fallback)
// separately from transport errors.
var ErrRecertify = errors.New("prob: untrusted result failed recertification")

// Recertify checks a deserialized Result claiming to solve the vector
// problem p. It accepts only a converged claim whose solution point
// reproduces the claim: finite, dimension-correct, primal-feasible for p's
// bounds and rows, integral on p's integer variables, and carrying an
// objective equal to p's objective at the point. Any violation returns an
// error wrapping ErrRecertify; nil means the result may cross the boundary.
//
// The check is deliberately point-wise: it proves the answer is a genuine
// feasible point with the stated objective, which is exactly what a
// deterministic re-solve would reproduce. A Byzantine worker that forges a
// converged status around a *feasible but suboptimal* point defeats any
// single-result check and is out of scope (detecting it requires redundant
// dispatch and vote, DESIGN.md §16); every corruption the chaos plans
// inject — bit-flips, perturbations, damaged frames — lands outside the
// feasible-and-consistent set and is caught here or below.
func Recertify(p *Problem, res *Result) error {
	if p == nil || p.Matrix != nil {
		return fmt.Errorf("%w: only vector problems recertify point-wise", ErrRecertify)
	}
	if res == nil {
		return fmt.Errorf("%w: no result", ErrRecertify)
	}
	if res.Status != guard.StatusConverged {
		return fmt.Errorf("%w: status %v carries no certified claim", ErrRecertify, res.Status)
	}
	x := res.X
	if x == nil || len(x) != p.NumVars || !guard.AllFinite(x) {
		return fmt.Errorf("%w: solution missing, mis-sized, or non-finite", ErrRecertify)
	}
	tol := cert.Tolerances{}.WithDefaults()
	if r := p.residualAt(x); r > tol.Feas {
		return fmt.Errorf("%w: primal residual %.3g > %.3g", ErrRecertify, r, tol.Feas)
	}
	if len(p.Integer) > 0 {
		var worst float64
		for _, j := range p.Integer {
			if v := math.Abs(x[j] - math.Round(x[j])); v > worst {
				worst = v
			}
		}
		if worst > tol.Int {
			return fmt.Errorf("%w: integrality violation %.3g > %.3g", ErrRecertify, worst, tol.Int)
		}
	}
	if g := cert.RelGap(res.Objective, p.EvalObjective(x)); g > tol.Obj {
		return fmt.Errorf("%w: reported objective off by %.3g > %.3g", ErrRecertify, g, tol.Obj)
	}
	return nil
}
