package prob_test

import (
	"reflect"
	"testing"

	"repro/internal/mat"
	"repro/internal/prob"
	"repro/internal/rng"
	"repro/internal/sdp"
)

// These tests pin the bit-faithfulness promise in compile.go: a Problem
// stated through the IR compiles to structures element-identical to the
// hand-built backend problems the call sites used before the migration. Any
// drift here silently changes EXPERIMENTS.md numbers, so everything is
// compared with == on the raw float data, never with tolerances.

// seededSymmetric builds a deterministic symmetric matrix with unit diagonal
// dominance, mimicking a spatial correlation matrix Rs.
func seededSymmetric(n int, seed uint64) *mat.Matrix {
	r := rng.New(seed)
	m := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := r.Float64()
			if i == j {
				v += float64(n)
			}
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

// TestGoldenTraceMinSDP pins the full Eq. 8 → 9 → 10 lowering of the
// diagonal-plus-low-rank RMP against the sdp.Problem that
// relax.DecomposeDiagLowRank historically hand-assembled: C = I, one
// BasisElem pin per off-diagonal entry in (i<j) row-major order, B holding
// the Rs values verbatim.
func TestGoldenTraceMinSDP(t *testing.T) {
	const n = 5
	rs := seededSymmetric(n, 42)

	rmp, err := prob.NewDiagLowRankRMP(rs)
	if err != nil {
		t.Fatal(err)
	}
	std, _, err := prob.Lower(rmp, prob.TraceSurrogate, prob.ToSDP)
	if err != nil {
		t.Fatal(err)
	}
	got, err := std.SDP()
	if err != nil {
		t.Fatal(err)
	}

	// The hand-built form, reproduced from the seed implementation.
	want := &sdp.Problem{C: mat.Identity(n)}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			want.A = append(want.A, sdp.BasisElem(n, i, j))
			want.B = append(want.B, rs.At(i, j))
		}
	}

	if !reflect.DeepEqual(got.C, want.C) {
		t.Errorf("C differs:\ngot  %v\nwant %v", got.C.Data, want.C.Data)
	}
	if len(got.A) != len(want.A) || len(got.B) != len(want.B) {
		t.Fatalf("constraint count: got %d/%d, want %d/%d", len(got.A), len(got.B), len(want.A), len(want.B))
	}
	for k := range want.A {
		if !reflect.DeepEqual(got.A[k].Data, want.A[k].Data) {
			t.Errorf("A[%d] differs:\ngot  %v\nwant %v", k, got.A[k].Data, want.A[k].Data)
		}
		if got.B[k] != want.B[k] {
			t.Errorf("B[%d] = %v, want %v (exact)", k, got.B[k], want.B[k])
		}
	}
}

// TestGoldenLPCompile pins the maximize-negation and bounds conventions of
// the LP compiler: the compiled lp.Problem must match a hand-negated one
// bit for bit, sharing the lp nil-bounds convention.
func TestGoldenLPCompile(t *testing.T) {
	rates := []float64{1.25e6, 3.5e6, 0.75e6}
	ir := &prob.Problem{
		NumVars: 3,
		Obj:     prob.Objective{Maximize: true, Lin: rates},
		Lo:      []float64{0, 0, 0},
		Hi:      []float64{1, 1, 1},
		Lin: []prob.LinCon{
			{Coeffs: []float64{1, 1, 0}, Sense: prob.LE, RHS: 1},
			{Coeffs: []float64{0.5, 0.2, 0.8}, Sense: prob.LE, RHS: 2},
			{Coeffs: rates, Sense: prob.GE, RHS: 1e6},
		},
	}
	got, err := ir.LP()
	if err != nil {
		t.Fatal(err)
	}
	neg := make([]float64, len(rates))
	for i, r := range rates {
		neg[i] = -r
	}
	want := &lpReplica{
		numVars:   3,
		objective: neg,
		lo:        []float64{0, 0, 0},
		hi:        []float64{1, 1, 1},
	}
	if got.NumVars != want.numVars ||
		!reflect.DeepEqual(got.Objective, want.objective) ||
		!reflect.DeepEqual(got.Lo, want.lo) ||
		!reflect.DeepEqual(got.Hi, want.hi) {
		t.Fatalf("compiled LP header differs: %+v", got)
	}
	if len(got.Constraints) != 3 {
		t.Fatalf("constraint count %d, want 3", len(got.Constraints))
	}
	for i, c := range ir.Lin {
		if !reflect.DeepEqual(got.Constraints[i].Coeffs, c.Coeffs) || got.Constraints[i].RHS != c.RHS {
			t.Errorf("row %d drifted: %+v vs %+v", i, got.Constraints[i], c)
		}
	}
}

// lpReplica holds the expected compiled header fields (a plain struct so the
// test reads as the seed's literal construction).
type lpReplica struct {
	numVars   int
	objective []float64
	lo, hi    []float64
}

// TestGoldenRecoveryRoundTrip pins the LiftRank recovery on a hand-built
// rank-one certificate: lifting Y = [1 xᵀ; x xxᵀ] must return exactly x and
// the exactly re-evaluated QCQP objective — the round trip the paper's
// Eq. 8 exactness argument rests on.
func TestGoldenRecoveryRoundTrip(t *testing.T) {
	p := &prob.Problem{
		NumVars: 2,
		Obj: prob.Objective{
			Quad:  mustMat(t, [][]float64{{2, 0}, {0, 4}}),
			Lin:   []float64{1, -1},
			Const: 0.5,
		},
		Lin: []prob.LinCon{{Coeffs: []float64{1, 1}, Sense: prob.EQ, RHS: 5}},
	}
	_, rec, err := prob.LiftRank(p)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{2, 3}
	y := mustMat(t, [][]float64{
		{1, x[0], x[1]},
		{x[0], x[0] * x[0], x[0] * x[1]},
		{x[1], x[0] * x[1], x[1] * x[1]},
	})
	res := rec.Lift(&prob.Result{XMat: y})
	if res.XMat != nil {
		t.Fatal("recovery left the matrix solution in place")
	}
	if !reflect.DeepEqual(res.X, x) {
		t.Fatalf("recovered x = %v, want %v (exact)", res.X, x)
	}
	// ½xᵀPx + qᵀx + c = ½(2·4 + 4·9) + (2 - 3) + 0.5 = 21.5, exactly.
	if want := 21.5; res.Objective != want {
		t.Fatalf("re-evaluated objective = %v, want %v (exact)", res.Objective, want)
	}
	// A scaled certificate Y₀₀ = s must divide out exactly: x = Y₍ⱼ₊₁₎₀/Y₀₀.
	s := 4.0
	ys := y.Clone().Scale(s)
	res = rec.Lift(&prob.Result{XMat: ys})
	if !reflect.DeepEqual(res.X, x) {
		t.Fatalf("scaled certificate recovered x = %v, want %v", res.X, x)
	}
}
