package prob_test

// End-to-end tests of the a-posteriori certifier (DESIGN.md §11) through
// Solve's public Tamper seam: hand-built known-infeasible solutions,
// off-by-tolerance nudges on both sides of the policy boundary, forged
// convergence, the escalation ladder, and the cache-quarantine interplay.

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cert"
	"repro/internal/guard"
	"repro/internal/prob"
)

// trailHas reports whether any trail entry starts with prefix.
func trailHas(res *prob.Result, prefix string) bool {
	for _, e := range res.Trail {
		if strings.HasPrefix(e, prefix) {
			return true
		}
	}
	return false
}

// TestCertifiedCleanSolvesPass pins the default-armed certifier on honest
// solves across backends: verdict pass, no cert noise in the trail.
func TestCertifiedCleanSolvesPass(t *testing.T) {
	// minlp (binary knapsack).
	res, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cert == nil || res.Cert.Verdict != cert.VerdictPass {
		t.Fatalf("minlp certificate = %v, want pass", res.Cert)
	}
	if trailHas(res, "cert:") {
		t.Fatalf("clean pass polluted the trail: %v", res.Trail)
	}
	if res.Residual > 1e-9 {
		t.Fatalf("clean knapsack residual = %g", res.Residual)
	}

	// lp (the continuous relaxation).
	lpIR := knapsackIR([]float64{10, 13, 7})
	lpIR.Integer = nil
	res, err = prob.Solve(lpIR, prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cert.Verdict != cert.VerdictPass {
		t.Fatalf("lp certificate = %v, want pass", res.Cert)
	}

	// sdp (diag/low-rank RMP through TraceSurrogate→ToSDP) — also guards
	// the gap-check calibration against the ADMM dual recovery accuracy.
	rmp, err := prob.NewDiagLowRankRMP(mustMat(t, [][]float64{{2, 1}, {1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	res, err = prob.Solve(rmp, prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cert.Verdict != cert.VerdictPass {
		t.Fatalf("sdp certificate = %v (checks %+v), want pass", res.Cert, res.Cert.Checks)
	}
}

// TestCertifyRejectsKnownInfeasible hands the certifier a hand-built
// infeasible "solution": (1,1,1) weighs 9 against the knapsack's capacity
// of 6. The deterministic tamper corrupts every escalation rung too, so the
// ladder must exhaust and degrade the result — never return Converged.
func TestCertifyRejectsKnownInfeasible(t *testing.T) {
	cache := prob.NewCache()
	if _, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	res, err := prob.Solve(knapsackIR([]float64{10, 13, 6}), prob.Options{
		Cache: cache,
		Tamper: func(r *prob.Result) {
			if r.X != nil {
				r.X = []float64{1, 1, 1}
			}
		},
	})
	if err == nil {
		t.Fatal("corrupted solve returned nil error")
	}
	if res == nil {
		t.Fatal("corrupted solve returned nil result")
	}
	if res.Status == guard.StatusConverged {
		t.Fatalf("corrupted solve kept Converged status: %+v", res)
	}
	if res.Cert == nil || res.Cert.Verdict != cert.VerdictFail {
		t.Fatalf("certificate = %v, want fail", res.Cert)
	}
	fails := strings.Join(res.Cert.Failures(), ",")
	if !strings.Contains(fails, "primal") {
		t.Fatalf("failures = %q, want primal among them", fails)
	}
	// The verdict and the ladder are recorded in the provenance trail.
	if !trailHas(res, "cert:fail(") || !trailHas(res, "cert:retry(1)") || !trailHas(res, "cert:retry(2)") {
		t.Fatalf("trail missing certificate provenance: %v", res.Trail)
	}
	// The cached solution that shares the failure's provenance is gone.
	if st := cache.Stats(); st.Quarantined == 0 {
		t.Fatalf("stats = %+v, want a quarantine", st)
	}
	// And the poisoned answer was never stored: the next same-shape solve
	// gets no warm start from it.
	clean, err := prob.Solve(knapsackIR([]float64{10, 13, 6}), prob.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if clean.WarmStarted {
		t.Fatal("solve after certificate failure warm-started from a poisoned entry")
	}
	if clean.Status != guard.StatusConverged || math.Abs(clean.Objective-19) > 1e-9 {
		t.Fatalf("recovery solve: status %v obj %g, want Converged 19", clean.Status, clean.Objective)
	}
}

// TestCertifyToleranceBoundary nudges an optimal LP vertex by amounts on
// both sides of the certificate tolerance: noise far below the policy is
// accepted (the certifier is a corruption detector, not an exactness
// test), an off-by-1e-3 point is rejected.
func TestCertifyToleranceBoundary(t *testing.T) {
	lpIR := func() *prob.Problem {
		p := knapsackIR([]float64{10, 13, 7})
		p.Integer = nil
		return p
	}
	nudge := func(eps float64) prob.Options {
		return prob.Options{Tamper: func(r *prob.Result) {
			if r.X != nil {
				r.X[1] += eps
			}
		}}
	}
	res, err := prob.Solve(lpIR(), nudge(1e-9))
	if err != nil {
		t.Fatalf("within-tolerance nudge rejected: %v", err)
	}
	if res.Cert.Verdict != cert.VerdictPass {
		t.Fatalf("1e-9 nudge certificate = %v, want pass", res.Cert)
	}
	res, err = prob.Solve(lpIR(), nudge(1e-3))
	if err == nil || res.Cert.Verdict != cert.VerdictFail {
		t.Fatalf("1e-3 nudge accepted: err=%v cert=%v", err, res.Cert)
	}
}

// TestCertifyForgedConvergence models premature-convergence corruption: a
// budget-interrupted branch and bound whose status is forged to Converged.
// The certifier must refuse the incomplete answer.
func TestCertifyForgedConvergence(t *testing.T) {
	// MaxNodes 1 stops the knapsack search before any incumbent exists.
	res, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{
		MaxNodes: 1,
		Tamper: func(r *prob.Result) {
			r.Status = guard.StatusConverged
		},
	})
	if err == nil {
		t.Fatal("forged convergence returned nil error")
	}
	if res.Status == guard.StatusConverged {
		t.Fatalf("forged convergence survived certification: %+v", res)
	}
	if res.Cert == nil || res.Cert.Verdict != cert.VerdictFail {
		t.Fatalf("certificate = %v, want fail", res.Cert)
	}
	if _, ok := res.Cert.Check("solution"); !ok {
		t.Fatalf("expected structural solution check, got %+v", res.Cert.Checks)
	}
}

// TestCertifySDPCorruption scales a converged ADMM iterate by 1.5: the
// recomputed equality residuals (not the backend's stale in-band fields)
// must catch it.
func TestCertifySDPCorruption(t *testing.T) {
	rmp, err := prob.NewDiagLowRankRMP(mustMat(t, [][]float64{{2, 1}, {1, 2}}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.Solve(rmp, prob.Options{
		Tamper: func(r *prob.Result) {
			if r.XMat != nil {
				bad := r.XMat.Clone()
				for k := range bad.Data {
					bad.Data[k] *= 1.5
				}
				r.XMat = bad
				if r.SDP != nil {
					cp := *r.SDP
					cp.X = bad
					r.SDP = &cp
				}
			}
		},
	})
	if err == nil {
		t.Fatal("corrupted SDP iterate accepted")
	}
	if res.Cert == nil || res.Cert.Verdict != cert.VerdictFail {
		t.Fatalf("certificate = %v, want fail", res.Cert)
	}
	fails := strings.Join(res.Cert.Failures(), ",")
	if !strings.Contains(fails, "primal") && !strings.Contains(fails, "objective") {
		t.Fatalf("failures = %q, want primal or objective", fails)
	}
}

// TestCertifyEscalationRecovers arms a one-shot tamper: the first attempt
// is corrupted, the first escalation rung re-solves clean, and the ladder
// must hand back a certified converged result with the retry on record.
func TestCertifyEscalationRecovers(t *testing.T) {
	fired := false
	res, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{
		Tamper: func(r *prob.Result) {
			if !fired && r.X != nil {
				fired = true
				r.X = []float64{1, 1, 1}
			}
		},
	})
	if err != nil {
		t.Fatalf("escalation did not recover: %v", err)
	}
	if res.Status != guard.StatusConverged || math.Abs(res.Objective-20) > 1e-9 {
		t.Fatalf("recovered solve: status %v obj %g, want Converged 20", res.Status, res.Objective)
	}
	if res.Cert == nil || res.Cert.Verdict != cert.VerdictPass || res.Cert.Retries != 1 {
		t.Fatalf("certificate = %+v, want pass after 1 retry", res.Cert)
	}
	if !trailHas(res, "cert:retry(1)") || !trailHas(res, "cert:pass") {
		t.Fatalf("trail missing escalation provenance: %v", res.Trail)
	}
}

// TestCertDisable pins what Disable means: the corrupted answer sails
// through untouched. It exists for measurement (rcrbench pairs), and this
// test documents exactly the hazard of using it anywhere else.
func TestCertDisable(t *testing.T) {
	res, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{
		Cert: prob.CertConfig{Disable: true},
		Tamper: func(r *prob.Result) {
			if r.X != nil {
				r.X = []float64{1, 1, 1}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cert != nil {
		t.Fatalf("disabled certifier still produced %v", res.Cert)
	}
	if res.Status != guard.StatusConverged {
		t.Fatalf("status = %v", res.Status)
	}
}

// TestCertifyNoRetries: negative MaxRetries degrades immediately without
// re-solving.
func TestCertifyNoRetries(t *testing.T) {
	attempts := 0
	res, err := prob.Solve(knapsackIR([]float64{10, 13, 7}), prob.Options{
		Cert: prob.CertConfig{MaxRetries: -1},
		Tamper: func(r *prob.Result) {
			attempts++
			if r.X != nil {
				r.X = []float64{1, 1, 1}
			}
		},
	})
	if err == nil || res.Status == guard.StatusConverged {
		t.Fatalf("uncertified result accepted: err=%v res=%+v", err, res)
	}
	if attempts != 1 {
		t.Fatalf("MaxRetries -1 ran %d attempts, want 1", attempts)
	}
	if res.Cert.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", res.Cert.Retries)
	}
}
