//go:build faultinject

package prob_test

// Chaos soak for the persistent cache's on-disk trust boundary (build tag:
// faultinject; ci.sh runs it with the chaos stage). Snapshot directories
// are corrupted with seeded faults at three depths:
//
//	bitflip  — one seeded bit anywhere in a shard file; every byte of a
//	           file sits inside a checksummed frame, so exactly one frame
//	           must detect it (entry skipped-and-counted, or whole file
//	           refused when the preamble is hit)
//	truncate — the file is cut to a seeded strictly-shorter prefix,
//	           severing framing mid-stream; the tail is counted corrupt
//	forge    — the high-impact case: an incumbent float inside an entry is
//	           corrupted (mantissa bit 51, faultinject's CorruptBitFlip
//	           convention) and the frame checksum is recomputed, so the
//	           entry is bit-perfect by integrity and identity checks and
//	           only load-time re-certification can refuse the solution
//
// The pinned contract: 100% of corruptions are detected and quarantined,
// no solve through a corrupted-then-loaded cache ever returns a result
// that differs bitwise from the clean reference, and the whole outcome
// matrix is identical at RCR_WORKERS=1 and 8.

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/cert"
	"repro/internal/faultinject"
	"repro/internal/guard"
	"repro/internal/par"
	"repro/internal/prob"
	"repro/internal/rng"
	"repro/internal/wire"
)

// chaosMILP builds a seeded qos column MILP with nRB resource blocks, so
// different nRB values give distinct shape fingerprints (distinct cache
// entries spread across shards).
func chaosMILP(seed uint64, nRB int) *prob.Problem {
	r := rng.New(seed)
	const nU, nL = 2, 2
	n := nU * nRB * nL
	levels := []float64{0.1, 0.2}
	p := &prob.Problem{NumVars: n, Hi: make([]float64, n)}
	p.Obj.Maximize = true
	p.Obj.Lin = make([]float64, n)
	for i := 0; i < n; i++ {
		p.Obj.Lin[i] = (1 + levels[i%nL]) * (1 + 0.25*r.Float64())
		p.Hi[i] = 1
		p.Integer = append(p.Integer, i)
	}
	for b := 0; b < nRB; b++ {
		row := prob.LinCon{Coeffs: make([]float64, n), Sense: prob.LE, RHS: 1}
		for u := 0; u < nU; u++ {
			for l := 0; l < nL; l++ {
				row.Coeffs[(u*nRB+b)*nL+l] = 1
			}
		}
		p.Lin = append(p.Lin, row)
	}
	for u := 0; u < nU; u++ {
		pow := prob.LinCon{Coeffs: make([]float64, n), Sense: prob.LE, RHS: 0.5}
		rate := prob.LinCon{Coeffs: make([]float64, n), Sense: prob.GE, RHS: 0.5}
		for b := 0; b < nRB; b++ {
			for l := 0; l < nL; l++ {
				i := (u*nRB+b)*nL + l
				pow.Coeffs[i] = levels[l]
				rate.Coeffs[i] = 1 + levels[l]
			}
		}
		p.Lin = append(p.Lin, pow, rate)
	}
	return p
}

func chaosWorkload() []*prob.Problem {
	out := make([]*prob.Problem, 0, 4)
	for i, nRB := range []int{3, 4, 5, 6} {
		out = append(out, chaosMILP(uint64(100+i), nRB))
	}
	return out
}

// persistOutcome is one comparable record of a corrupted-load run.
type persistOutcome struct {
	Mode        string
	File        string
	Loaded      int
	Recertified int
	Rejected    int
	Corrupt     int
	Quarantined int
	// Solves records, per workload problem, the bitwise objective, status,
	// cache path, and cert verdict of a re-solve through the loaded cache.
	Solves []persistSolve
}

type persistSolve struct {
	ObjBits  uint64
	Status   guard.Status
	Verdict  cert.Verdict
	CacheHit bool
	Warm     bool
}

// writeSnapshot solves the workload through a fresh cache and snapshots it.
func writeSnapshot(t *testing.T, dir string, workload []*prob.Problem) {
	t.Helper()
	c := prob.NewCache()
	for i, p := range workload {
		res, err := prob.Solve(p, prob.Options{Cache: c})
		if err != nil {
			t.Fatalf("workload %d: %v", i, err)
		}
		if res.Status != guard.StatusConverged {
			t.Fatalf("workload %d status %v", i, res.Status)
		}
	}
	st, err := c.Snapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != len(workload) || st.Incumbents != len(workload) {
		t.Fatalf("snapshot = %+v, want %d entries with incumbents", st, len(workload))
	}
}

// copySnapshot clones a snapshot directory so each case corrupts its own.
func copySnapshot(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(src, "shard-*.rcr"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(f)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// nonEmptyShardFiles lists snapshot files that carry at least one entry.
func nonEmptyShardFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.rcr"))
	if err != nil {
		t.Fatal(err)
	}
	const preamble = wire.HeaderSize + 4 + wire.ChecksumSize
	var out []string
	for _, f := range files {
		info, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > preamble {
			out = append(out, filepath.Base(f))
		}
	}
	if len(out) == 0 {
		t.Fatal("snapshot carries no entries to corrupt")
	}
	return out
}

// forgeEntries corrupts mantissa bit 51 of the first incumbent float in
// every entry of a shard file and repairs each entry's checksum, so the
// damage is invisible to integrity and identity checks. Returns the number
// of entries forged.
func forgeEntries(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	preLen, err := wire.FrameLen(data)
	if err != nil {
		t.Fatal(err)
	}
	forged := 0
	off := preLen
	for off < len(data) {
		n, err := wire.FrameLen(data[off:])
		if err != nil {
			t.Fatalf("clean snapshot has broken framing at %d: %v", off, err)
		}
		frame := data[off : off+n]
		payload := frame[wire.HeaderSize : n-wire.ChecksumSize]
		probLen, err := wire.FrameLen(payload)
		if err != nil {
			t.Fatal(err)
		}
		// Payload after the problem frame: x as flag(1) + len(4) + floats.
		// Following faultinject's CorruptBitFlip convention, flip mantissa
		// bit 51 of the first NONZERO coordinate (bit 51 of a zero is a
		// subnormal — indistinguishable from zero at any tolerance). For
		// float k that bit lives at byte 8k+6, bit 3.
		xData := probLen + 1 + 4
		if payload[probLen] != 1 || xData+8 > len(payload) {
			t.Fatal("entry carries no vector incumbent to forge")
		}
		xLen := int(binary.LittleEndian.Uint32(payload[probLen+1:]))
		hit := false
		for k := 0; k < xLen && xData+8*(k+1) <= len(payload); k++ {
			if binary.LittleEndian.Uint64(payload[xData+8*k:]) != 0 {
				payload[xData+8*k+6] ^= 1 << 3
				hit = true
				break
			}
		}
		if !hit {
			t.Fatal("incumbent is all zeros; nothing to forge")
		}
		body := frame[:n-wire.ChecksumSize]
		binary.LittleEndian.PutUint64(frame[n-wire.ChecksumSize:], wire.Checksum(body))
		forged++
		off += n
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return forged
}

// runPersistChaos executes the full corruption matrix against one pristine
// snapshot and returns comparable outcomes. Everything is keyed off seeds
// and file contents, never call order or clocks.
func runPersistChaos(t *testing.T) []persistOutcome {
	t.Helper()
	workload := chaosWorkload()
	pristine := t.TempDir()
	writeSnapshot(t, pristine, workload)
	shardFiles := nonEmptyShardFiles(t, pristine)

	// Clean reference: loading the pristine snapshot recertifies every
	// incumbent, and re-solves are content-identical cache hits.
	clean := prob.NewCache()
	cleanSt, err := clean.Load(pristine)
	if err != nil {
		t.Fatal(err)
	}
	if cleanSt.Recertified != len(workload) || cleanSt.Rejected != 0 || cleanSt.Corrupt != 0 {
		t.Fatalf("pristine LoadStats = %+v", cleanSt)
	}
	cleanSolves := solveThrough(t, clean, workload)
	for i, s := range cleanSolves {
		if !s.CacheHit || s.Status != guard.StatusConverged {
			t.Fatalf("clean reference solve %d: %+v", i, s)
		}
	}

	var outcomes []persistOutcome
	for _, mode := range []string{"bitflip", "truncate", "forge"} {
		for fi, name := range shardFiles {
			dir := t.TempDir()
			copySnapshot(t, pristine, dir)
			path := filepath.Join(dir, name)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			seed := uint64(0xc4a05<<8) + uint64(fi)
			wantForged := 0
			switch mode {
			case "bitflip":
				faultinject.BitflipBytes(seed, data)
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			case "truncate":
				if err := os.WriteFile(path, faultinject.TruncateBytes(seed, data), 0o644); err != nil {
					t.Fatal(err)
				}
			case "forge":
				wantForged = forgeEntries(t, path)
			}

			c := prob.NewCache()
			st, err := c.Load(dir)
			if err != nil {
				t.Fatalf("%s/%s: Load errored instead of quarantining: %v", mode, name, err)
			}

			// Detection is mandatory: a corrupted file must lose entries,
			// count corrupt frames, or reject incumbents — never load as
			// if nothing happened.
			detected := st.Entries < cleanSt.Entries || st.Corrupt > 0 || st.Rejected > 0
			if !detected {
				t.Errorf("%s/%s: corruption loaded silently: %+v", mode, name, st)
			}
			if mode == "forge" {
				// Forged frames pass checksum and fingerprint by
				// construction; only re-certification stands, and it must
				// quarantine every forged incumbent.
				if st.Rejected != wantForged || st.Corrupt != 0 || st.Entries != cleanSt.Entries {
					t.Errorf("forge/%s: LoadStats = %+v, want %d rejected of %d entries",
						name, st, wantForged, cleanSt.Entries)
				}
				if q := c.Stats().Quarantined; q != wantForged {
					t.Errorf("forge/%s: quarantined counter = %d, want %d", name, q, wantForged)
				}
			}

			// Zero silently-wrong: every solve through the damaged cache
			// must match the clean reference bit for bit (surviving state
			// re-proved itself; rejected state forces a fresh solve that
			// converges to the identical certified answer).
			solves := solveThrough(t, c, workload)
			for i := range solves {
				if solves[i].ObjBits != cleanSolves[i].ObjBits ||
					solves[i].Status != cleanSolves[i].Status ||
					solves[i].Verdict != cleanSolves[i].Verdict {
					t.Errorf("%s/%s: solve %d diverged from clean reference:\n corrupt: %+v\n clean:   %+v",
						mode, name, i, solves[i], cleanSolves[i])
				}
			}

			outcomes = append(outcomes, persistOutcome{
				Mode: mode, File: name,
				Loaded: st.Entries, Recertified: st.Recertified,
				Rejected: st.Rejected, Corrupt: st.Corrupt,
				Quarantined: c.Stats().Quarantined,
				Solves:      solves,
			})
		}
	}
	return outcomes
}

func solveThrough(t *testing.T, c *prob.Cache, workload []*prob.Problem) []persistSolve {
	t.Helper()
	out := make([]persistSolve, len(workload))
	for i, p := range workload {
		res, err := prob.Solve(p, prob.Options{Cache: c})
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		verdict := cert.VerdictNone
		if res.Cert != nil {
			verdict = res.Cert.Verdict
		}
		out[i] = persistSolve{
			ObjBits:  math.Float64bits(res.Objective),
			Status:   res.Status,
			Verdict:  verdict,
			CacheHit: res.CacheHit,
			Warm:     res.WarmStarted,
		}
	}
	return out
}

// TestPersistChaos runs the on-disk corruption matrix at RCR_WORKERS=1 and
// 8 and requires bit-identical outcomes end to end.
func TestPersistChaos(t *testing.T) {
	t.Setenv(par.EnvWorkers, "1")
	serial := runPersistChaos(t)
	t.Setenv(par.EnvWorkers, "8")
	wide := runPersistChaos(t)
	if !reflect.DeepEqual(serial, wide) {
		for i := range serial {
			if i < len(wide) && !reflect.DeepEqual(serial[i], wide[i]) {
				t.Errorf("workers 1 vs 8 diverge at %s/%s:\n  1: %+v\n  8: %+v",
					serial[i].Mode, serial[i].File, serial[i], wide[i])
			}
		}
		t.Fatal("persist chaos outcomes are not worker-count invariant")
	}
}
