// Binary wire codecs for Problem and Result (DESIGN.md §15). The payload
// layout deliberately mirrors the Fingerprint walk in cache.go field for
// field: the self-describing frame header carries the shape/content
// fingerprints, and a decoder re-fingerprints the decoded object and
// rejects any mismatch (wire.ErrFingerprint), so codec drift between the
// two walks is caught at the first decode rather than silently corrupting
// the cache.
//
// Results serialize the certified answer and its provenance — solution,
// objective, typed status, trail, cert verdict summary, residual/gap — but
// not the raw backend sub-results (LP/MILP/QP/SDP pointers): those carry
// pre-lift internals that are reconstructible by re-solving and would drag
// every backend's private layout into the frozen wire contract.

package prob

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/cert"
	"repro/internal/guard"
	"repro/internal/mat"
	"repro/internal/wire"
)

// maxWireFrame bounds the frame size ReadFrom will buffer from a stream,
// so a hostile length prefix cannot force a huge allocation before the
// checksum is checked.
const maxWireFrame = 1 << 31

// EncodeWire appends p's complete framed encoding (header, payload,
// checksum) to w. Encoding cannot fail; the frame header carries p's
// shape/content fingerprints.
func (p *Problem) EncodeWire(w *wire.Writer) {
	fp := p.Fingerprint()
	start := w.BeginFrame(wire.Header{Kind: wire.KindProblem, Shape: fp.Shape, Content: fp.Content})
	p.encodeWirePayload(w)
	w.EndFrame(start)
}

// BinarySize returns the exact size in bytes of p's framed encoding.
func (p *Problem) BinarySize() int {
	n := wire.HeaderSize + wire.ChecksumSize + 1 // frame + kind tag
	if p.Matrix != nil {
		m := p.Matrix
		n += 8 + 1 + 1 // Dim + Obj + PSD
		n += matrixWireSize(m.C)
		n += 1 // A nil flag
		if m.A != nil {
			n += 4
			for _, a := range m.A {
				n += matrixWireSize(a)
			}
		}
		n += f64sWireSize(m.B)
		return n
	}
	n += 8 + 1 // NumVars + Maximize
	n += f64sWireSize(p.Obj.Lin) + matrixWireSize(p.Obj.Quad) + 8
	n += f64sWireSize(p.Lo) + f64sWireSize(p.Hi)
	n += intsWireSize(p.Integer)
	n += 1
	if p.Lin != nil {
		n += 4
		for i := range p.Lin {
			n += 1 + f64sWireSize(p.Lin[i].Coeffs) + 8
		}
	}
	n += 1
	if p.Quad != nil {
		n += 4
		for i := range p.Quad {
			n += 1 + matrixWireSize(p.Quad[i].P) + f64sWireSize(p.Quad[i].Q) + 8
		}
	}
	n += 1
	if p.Bilin != nil {
		n += 4 + 24*len(p.Bilin)
	}
	return n
}

func f64sWireSize(v []float64) int {
	if v == nil {
		return 1
	}
	return 1 + 4 + 8*len(v)
}

func intsWireSize(v []int) int {
	if v == nil {
		return 1
	}
	return 1 + 4 + 8*len(v)
}

func matrixWireSize(m *mat.Matrix) int {
	if m == nil {
		return 1
	}
	return 1 + 8 + 8*len(m.Data)
}

// Payload tags mirroring the fingerprint walk's problem-kind tags.
const (
	wireTagMatrix = 1
	wireTagVector = 2
)

func (p *Problem) encodeWirePayload(w *wire.Writer) {
	if p.Matrix != nil {
		m := p.Matrix
		w.U8(wireTagMatrix)
		w.I64(int64(m.Dim))
		w.U8(uint8(m.Obj))
		w.Bool(m.PSD)
		writeWireMatrix(w, m.C)
		if m.A == nil {
			w.U8(0)
		} else {
			w.U8(1)
			w.U32(uint32(len(m.A)))
			for _, a := range m.A {
				writeWireMatrix(w, a)
			}
		}
		w.F64s(m.B)
		return
	}
	w.U8(wireTagVector)
	w.I64(int64(p.NumVars))
	w.Bool(p.Obj.Maximize)
	w.F64s(p.Obj.Lin)
	writeWireMatrix(w, p.Obj.Quad)
	w.F64(p.Obj.Const)
	w.F64s(p.Lo)
	w.F64s(p.Hi)
	w.Ints(p.Integer)
	if p.Lin == nil {
		w.U8(0)
	} else {
		w.U8(1)
		w.U32(uint32(len(p.Lin)))
		for i := range p.Lin {
			w.U8(uint8(p.Lin[i].Sense))
			w.F64s(p.Lin[i].Coeffs)
			w.F64(p.Lin[i].RHS)
		}
	}
	if p.Quad == nil {
		w.U8(0)
	} else {
		w.U8(1)
		w.U32(uint32(len(p.Quad)))
		for i := range p.Quad {
			w.U8(uint8(p.Quad[i].Sense))
			writeWireMatrix(w, p.Quad[i].P)
			w.F64s(p.Quad[i].Q)
			w.F64(p.Quad[i].R)
		}
	}
	if p.Bilin == nil {
		w.U8(0)
	} else {
		w.U8(1)
		w.U32(uint32(len(p.Bilin)))
		for i := range p.Bilin {
			w.I64(int64(p.Bilin[i].W))
			w.I64(int64(p.Bilin[i].X))
			w.I64(int64(p.Bilin[i].Y))
		}
	}
}

// writeWireMatrix encodes a matrix with a nil flag, its dimensions, and its
// row-major data (length implied by the dimensions).
func writeWireMatrix(w *wire.Writer, m *mat.Matrix) {
	if m == nil {
		w.U8(0)
		return
	}
	w.U8(1)
	w.U32(uint32(m.Rows))
	w.U32(uint32(m.Cols))
	for _, v := range m.Data {
		w.F64(v)
	}
}

// readWireMatrix decodes a matrix, reusing into's backing array when its
// capacity suffices.
func readWireMatrix(r *wire.Reader, into *mat.Matrix) *mat.Matrix {
	switch r.U8() {
	case 0:
		return nil
	case 1:
	default:
		r.Corruptf("matrix flag out of range")
		return nil
	}
	rows := int(r.U32())
	cols := int(r.U32())
	// Bound the element count by the bytes actually present before any
	// multiplication can overflow or allocate.
	if uint64(rows)*uint64(cols) > uint64(r.Remaining())/8 {
		r.Corruptf("matrix %dx%d exceeds remaining payload", rows, cols)
		return nil
	}
	var dst []float64
	if into != nil {
		dst = into.Data
	}
	data := r.F64sN(rows*cols, dst)
	if r.Err() != nil {
		return nil
	}
	if into == nil {
		into = &mat.Matrix{}
	}
	into.Rows, into.Cols, into.Data = rows, cols, data
	return into
}

// DecodeProblem decodes a framed Problem from data, reusing into's backing
// storage when possible (pass nil to allocate fresh). The decode is strict:
// trailing bytes, structural violations, and any mismatch between the
// decoded problem's fingerprints and the frame header are typed errors. On
// error the returned problem is nil and into's contents are unspecified.
func DecodeProblem(data []byte, into *Problem) (*Problem, error) {
	h, payload, err := openExactFrame(data, wire.KindProblem)
	if err != nil {
		return nil, err
	}
	p := into
	if p == nil {
		p = &Problem{}
	}
	r := wire.NewReader(payload)
	p.decodeWirePayload(&r)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", wire.ErrCorrupt, r.Remaining())
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", wire.ErrCorrupt, err)
	}
	if fp := p.Fingerprint(); fp.Shape != h.Shape || fp.Content != h.Content {
		return nil, fmt.Errorf("%w: decoded %x/%x, header %x/%x",
			wire.ErrFingerprint, fp.Shape, fp.Content, h.Shape, h.Content)
	}
	return p, nil
}

// openExactFrame opens the frame at data, requiring the expected kind and
// that the frame spans data exactly (no trailing bytes).
func openExactFrame(data []byte, kind uint16) (wire.Header, []byte, error) {
	n, err := wire.FrameLen(data)
	if err != nil {
		return wire.Header{}, nil, err
	}
	if n != len(data) {
		return wire.Header{}, nil, fmt.Errorf("%w: %d trailing bytes after frame", wire.ErrCorrupt, len(data)-n)
	}
	h, payload, err := wire.OpenFrame(data)
	if err != nil {
		return wire.Header{}, nil, err
	}
	if h.Kind != kind {
		return wire.Header{}, nil, fmt.Errorf("%w: frame kind %d, want %d", wire.ErrCorrupt, h.Kind, kind)
	}
	return h, payload, nil
}

func (p *Problem) decodeWirePayload(r *wire.Reader) {
	switch r.U8() {
	case wireTagMatrix:
		m := p.Matrix
		if m == nil {
			m = &MatrixBlock{}
		}
		m.Dim = int(r.I64())
		m.Obj = MatrixObj(r.U8())
		m.PSD = r.Bool()
		m.C = readWireMatrix(r, m.C)
		switch r.U8() {
		case 0:
			m.A = nil
		case 1:
			n := int(r.U32())
			if n > r.Remaining() {
				r.Corruptf("%d constraint matrices exceed remaining payload", n)
				return
			}
			if cap(m.A) >= n {
				m.A = m.A[:n]
			} else {
				m.A = make([]*mat.Matrix, n)
			}
			if m.A == nil {
				m.A = []*mat.Matrix{}
			}
			for i := range m.A {
				m.A[i] = readWireMatrix(r, m.A[i])
			}
		default:
			r.Corruptf("matrix constraint flag out of range")
			return
		}
		m.B = r.F64s(m.B)
		// A matrix problem carries no vector fields.
		p.NumVars = 0
		p.Obj = Objective{}
		p.Lo, p.Hi, p.Integer = nil, nil, nil
		p.Lin, p.Quad, p.Bilin = nil, nil, nil
		p.Matrix = m
	case wireTagVector:
		p.Matrix = nil
		p.NumVars = int(r.I64())
		p.Obj.Maximize = r.Bool()
		p.Obj.Lin = r.F64s(p.Obj.Lin)
		p.Obj.Quad = readWireMatrix(r, p.Obj.Quad)
		p.Obj.Const = r.F64()
		p.Lo = r.F64s(p.Lo)
		p.Hi = r.F64s(p.Hi)
		p.Integer = r.Ints(p.Integer)
		switch r.U8() {
		case 0:
			p.Lin = nil
		case 1:
			n := int(r.U32())
			if n > r.Remaining() {
				r.Corruptf("%d linear rows exceed remaining payload", n)
				return
			}
			if cap(p.Lin) >= n {
				p.Lin = p.Lin[:n]
			} else {
				p.Lin = make([]LinCon, n)
			}
			if p.Lin == nil {
				p.Lin = []LinCon{}
			}
			for i := range p.Lin {
				p.Lin[i].Sense = Sense(r.U8())
				p.Lin[i].Coeffs = r.F64s(p.Lin[i].Coeffs)
				p.Lin[i].RHS = r.F64()
			}
		default:
			r.Corruptf("linear row flag out of range")
			return
		}
		switch r.U8() {
		case 0:
			p.Quad = nil
		case 1:
			n := int(r.U32())
			if n > r.Remaining() {
				r.Corruptf("%d quadratic rows exceed remaining payload", n)
				return
			}
			if cap(p.Quad) >= n {
				p.Quad = p.Quad[:n]
			} else {
				p.Quad = make([]QuadCon, n)
			}
			if p.Quad == nil {
				p.Quad = []QuadCon{}
			}
			for i := range p.Quad {
				p.Quad[i].Sense = Sense(r.U8())
				p.Quad[i].P = readWireMatrix(r, p.Quad[i].P)
				p.Quad[i].Q = r.F64s(p.Quad[i].Q)
				p.Quad[i].R = r.F64()
			}
		default:
			r.Corruptf("quadratic row flag out of range")
			return
		}
		switch r.U8() {
		case 0:
			p.Bilin = nil
		case 1:
			n := int(r.U32())
			if n > r.Remaining() {
				r.Corruptf("%d bilinear rows exceed remaining payload", n)
				return
			}
			if cap(p.Bilin) >= n {
				p.Bilin = p.Bilin[:n]
			} else {
				p.Bilin = make([]Bilinear, n)
			}
			if p.Bilin == nil {
				p.Bilin = []Bilinear{}
			}
			for i := range p.Bilin {
				p.Bilin[i].W = int(r.I64())
				p.Bilin[i].X = int(r.I64())
				p.Bilin[i].Y = int(r.I64())
			}
		default:
			r.Corruptf("bilinear row flag out of range")
			return
		}
	default:
		r.Corruptf("problem kind tag out of range")
	}
}

// WriteTo writes p's framed encoding to dst, implementing io.WriterTo.
func (p *Problem) WriteTo(dst io.Writer) (int64, error) {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	p.EncodeWire(w)
	n, err := dst.Write(w.Bytes())
	return int64(n), err
}

// ReadFrom reads one framed Problem from src into p, implementing
// io.ReaderFrom. It buffers exactly one frame (bounded by maxWireFrame)
// and then decodes it with DecodeProblem's full validation.
func (p *Problem) ReadFrom(src io.Reader) (int64, error) {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	n, err := readFrameInto(w, src)
	if err != nil {
		return n, err
	}
	if _, err := DecodeProblem(w.Bytes(), p); err != nil {
		return n, err
	}
	return n, nil
}

// readFrameInto reads one complete frame from src into w's buffer.
func readFrameInto(w *wire.Writer, src io.Reader) (int64, error) {
	hdr := w.Extend(wire.HeaderSize)
	n, err := io.ReadFull(src, hdr)
	if err != nil {
		return int64(n), fmt.Errorf("%w: reading frame header: %v", wire.ErrTruncated, err)
	}
	plen := binary.LittleEndian.Uint64(hdr[24:32])
	if plen > maxWireFrame {
		return int64(n), fmt.Errorf("%w: frame payload claims %d bytes", wire.ErrCorrupt, plen)
	}
	rest := w.Extend(int(plen) + wire.ChecksumSize)
	m, err := io.ReadFull(src, rest)
	if err != nil {
		return int64(n + m), fmt.Errorf("%w: reading frame body: %v", wire.ErrTruncated, err)
	}
	return int64(n + m), nil
}

// EncodeWire appends res's complete framed encoding to w. The header
// carries fp, the fingerprint of the problem this result solves (pass the
// zero Fingerprint when untracked); DecodeResult returns it alongside the
// result so a coordinator can match results back to requests.
func (res *Result) EncodeWire(w *wire.Writer, fp Fingerprint) {
	start := w.BeginFrame(wire.Header{Kind: wire.KindResult, Shape: fp.Shape, Content: fp.Content})
	res.encodeWirePayload(w)
	w.EndFrame(start)
}

// BinarySize returns the exact size in bytes of res's framed encoding.
func (res *Result) BinarySize() int {
	n := wire.HeaderSize + wire.ChecksumSize
	n += f64sWireSize(res.X) + matrixWireSize(res.XMat)
	n += 8 + 8 // Objective + Status
	n += 4 + len(res.Backend)
	n += 1
	if res.Trail != nil {
		n += 4
		for _, s := range res.Trail {
			n += 4 + len(s)
		}
	}
	n += 1 + 1 + 8 + 8 // CacheHit + WarmStarted + Residual + Gap
	n += 1
	if res.Cert != nil {
		n += 1 + 8 + 1
		if res.Cert.Checks != nil {
			n += 4
			for _, c := range res.Cert.Checks {
				n += 4 + len(c.Name) + 8 + 8 + 1
			}
		}
	}
	return n
}

func (res *Result) encodeWirePayload(w *wire.Writer) {
	w.F64s(res.X)
	writeWireMatrix(w, res.XMat)
	w.F64(res.Objective)
	w.I64(int64(res.Status))
	w.String(res.Backend)
	if res.Trail == nil {
		w.U8(0)
	} else {
		w.U8(1)
		w.U32(uint32(len(res.Trail)))
		for _, s := range res.Trail {
			w.String(s)
		}
	}
	w.Bool(res.CacheHit)
	w.Bool(res.WarmStarted)
	w.F64(res.Residual)
	w.F64(res.Gap)
	if res.Cert == nil {
		w.U8(0)
		return
	}
	w.U8(1)
	w.U8(uint8(res.Cert.Verdict))
	w.I64(int64(res.Cert.Retries))
	if res.Cert.Checks == nil {
		w.U8(0)
		return
	}
	w.U8(1)
	w.U32(uint32(len(res.Cert.Checks)))
	for _, c := range res.Cert.Checks {
		w.String(c.Name)
		w.F64(c.Value)
		w.F64(c.Tol)
		w.Bool(c.OK)
	}
}

// DecodeResult decodes a framed Result from data, reusing into when
// non-nil, and returns the problem fingerprint recorded in the frame
// header. Backend sub-results (LP/MILP/QP/SDP) are never on the wire and
// come back nil.
func DecodeResult(data []byte, into *Result) (*Result, Fingerprint, error) {
	h, payload, err := openExactFrame(data, wire.KindResult)
	if err != nil {
		return nil, Fingerprint{}, err
	}
	res := into
	if res == nil {
		res = &Result{}
	}
	r := wire.NewReader(payload)
	res.decodeWirePayload(&r)
	if err := r.Err(); err != nil {
		return nil, Fingerprint{}, err
	}
	if r.Remaining() != 0 {
		return nil, Fingerprint{}, fmt.Errorf("%w: %d trailing payload bytes", wire.ErrCorrupt, r.Remaining())
	}
	return res, Fingerprint{Shape: h.Shape, Content: h.Content}, nil
}

func (res *Result) decodeWirePayload(r *wire.Reader) {
	res.X = r.F64s(res.X)
	res.XMat = readWireMatrix(r, res.XMat)
	res.Objective = r.F64()
	status := r.I64()
	if status < 0 || status > 255 {
		r.Corruptf("status %d out of range", status)
		return
	}
	res.Status = guard.Status(status)
	res.Backend = r.String()
	switch r.U8() {
	case 0:
		res.Trail = nil
	case 1:
		n := int(r.U32())
		if n > r.Remaining() {
			r.Corruptf("%d trail entries exceed remaining payload", n)
			return
		}
		res.Trail = make([]string, n)
		for i := range res.Trail {
			res.Trail[i] = r.String()
		}
	default:
		r.Corruptf("trail flag out of range")
		return
	}
	res.CacheHit = r.Bool()
	res.WarmStarted = r.Bool()
	res.Residual = r.F64()
	res.Gap = r.F64()
	res.LP, res.MILP, res.QP, res.SDP = nil, nil, nil, nil
	switch r.U8() {
	case 0:
		res.Cert = nil
		return
	case 1:
	default:
		r.Corruptf("cert flag out of range")
		return
	}
	c := &cert.Certificate{}
	verdict := r.U8()
	if verdict > uint8(cert.VerdictFail) {
		r.Corruptf("cert verdict %d out of range", verdict)
		return
	}
	c.Verdict = cert.Verdict(verdict)
	c.Retries = int(r.I64())
	switch r.U8() {
	case 0:
		c.Checks = nil
	case 1:
		n := int(r.U32())
		if n > r.Remaining() {
			r.Corruptf("%d cert checks exceed remaining payload", n)
			return
		}
		c.Checks = make([]cert.Check, n)
		for i := range c.Checks {
			c.Checks[i].Name = r.String()
			c.Checks[i].Value = r.F64()
			c.Checks[i].Tol = r.F64()
			c.Checks[i].OK = r.Bool()
		}
	default:
		r.Corruptf("cert checks flag out of range")
		return
	}
	res.Cert = c
}

// WriteTo writes res's framed encoding (with a zero problem fingerprint)
// to dst, implementing io.WriterTo. Callers tracking the solved problem
// should prefer EncodeWire with its fingerprint.
func (res *Result) WriteTo(dst io.Writer) (int64, error) {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	res.EncodeWire(w, Fingerprint{})
	n, err := dst.Write(w.Bytes())
	return int64(n), err
}

// ReadFrom reads one framed Result from src into res, implementing
// io.ReaderFrom.
func (res *Result) ReadFrom(src io.Reader) (int64, error) {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	n, err := readFrameInto(w, src)
	if err != nil {
		return n, err
	}
	if _, _, err := DecodeResult(w.Bytes(), res); err != nil {
		return n, err
	}
	return n, nil
}
