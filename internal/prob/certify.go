package prob

// This file is the problem-aware half of the a-posteriori certification
// contract (DESIGN.md §11; the solver-agnostic vocabulary lives in
// internal/cert). Every Result leaving Solve with a converged status is
// checked against the problem itself — primal residuals recomputed from the
// lowered IR, objective consistency recomputed from the returned point,
// integrality and bound consistency for MINLP incumbents, PSD membership
// for SDP iterates, and the backend-surfaced duality gaps where dual
// information exists. A failed certificate drives the escalation ladder in
// Solve: tightened-tolerance re-solve, then a seeded perturbed restart,
// then a degraded typed status the qos fallback ladder treats as a rung
// failure.

import (
	"math"

	"repro/internal/cert"
	"repro/internal/guard"
	"repro/internal/mat"
	"repro/internal/rng"
)

// CertConfig configures the a-posteriori certifier. The zero value arms it:
// certification is the default because an unchecked answer poisons the
// cache, every warm start seeded from it, and every downstream QoS
// decision. Disable exists for measurement (rcrbench certified-vs-
// uncertified pairs), not for production call sites.
type CertConfig struct {
	// Disable turns certification (and with it the escalation ladder) off.
	Disable bool
	// Tol is the tolerance policy; zero fields take the cert defaults.
	Tol cert.Tolerances
	// MaxRetries bounds the escalation re-solves after a failed
	// certificate: 0 takes the default of 2 (tightened-tolerance re-solve,
	// then seeded perturbed restart); negative disables escalation so a
	// failure degrades immediately.
	MaxRetries int
}

// retries resolves the MaxRetries convention.
func (c CertConfig) retries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return 2
	default:
		return c.MaxRetries
	}
}

// certifyAttempt certifies one dispatch attempt. backendX is the
// backend-space solution captured before recovery lifting; res is the
// lifted result. Results whose typed status already signals failure carry
// nothing to certify (VerdictNone) — their status is the degradation.
func certifyAttempt(p *Problem, low *loweredForm, o Options, res *Result, backendX []float64) *cert.Certificate {
	tol := o.Cert.Tol.WithDefaults()
	if res.Status != guard.StatusConverged {
		return &cert.Certificate{Verdict: cert.VerdictNone}
	}
	b := cert.NewBuilder()
	if low.backend == "sdp" {
		certifySDP(b, low, o, res, tol)
	} else {
		certifyVector(b, p, low, o, res, backendX, tol)
	}
	c := b.Done()
	if pc, ok := c.Check("primal"); ok {
		res.Residual = pc.Value
	}
	return c
}

// certifyVector checks an lp/minlp/qp answer.
func certifyVector(b *cert.Builder, p *Problem, low *loweredForm, o Options, res *Result, x []float64, tol cert.Tolerances) {
	if x == nil || len(x) != low.final.NumVars || !guard.AllFinite(x) {
		// A converged status with no usable point is itself the corruption
		// (premature-convergence forgery); fail structurally.
		b.Fail("solution")
		return
	}

	// Primal feasibility, recomputed from the lowered IR the backend
	// actually solved — never from the backend's own residual fields, which
	// travel with the (possibly corrupted) result.
	b.Add("primal", low.final.residualAt(x), tol.Feas)

	// Integrality of MINLP incumbents.
	if len(low.final.Integer) > 0 {
		var worst float64
		for _, j := range low.final.Integer {
			if v := math.Abs(x[j] - math.Round(x[j])); v > worst {
				worst = v
			}
		}
		b.Add("integral", worst, tol.Int)
	}

	// Objective consistency: the backend's reported optimum against a
	// recomputation from the returned point, in backend (minimize-sense)
	// units. A corrupted iterate almost never reproduces the honest value.
	if reported, recomputed, ok := backendObjectives(low, res, x); ok {
		b.Add("objective", cert.RelGap(reported, recomputed), tol.Obj)
	}

	switch low.backend {
	case "minlp":
		// Bound consistency: a genuine incumbent can never beat the proven
		// global lower bound.
		if r := res.MILP; r != nil && guard.Finite(r.BestBound) {
			under := r.BestBound - backendLinObj(low.final, x)
			b.Add("bound", under/(1+math.Abs(r.BestBound)), tol.Feas)
		}
	case "qp":
		// Duality gap surfaced by the barrier: m/t bounds the distance to
		// the optimum for a centered iterate. Scaled against the barrier's
		// own convergence tolerance — the certificate detects corruption,
		// it is not a second convergence test.
		if r := res.QP; r != nil {
			qTol := o.QP.Tol
			if qTol == 0 {
				qTol = 1e-8
			}
			b.Add("gap", r.Gap, math.Max(tol.Gap, 10*qTol))
		}
	}
	// The lp backend exposes no dual information (the two-phase simplex
	// keeps no multiplier tableau); its certificate rests on the primal
	// and objective checks, which is what the chaos corruption magnitudes
	// are calibrated against (DESIGN.md §11 tolerance policy).

	// Recovery round-trip. For exact (empty) trails the lifted objective
	// must reproduce the lowered one at the backend point. For McCormick
	// trails the lift recomputes w = x·y exactly, so the lifted point's
	// true objective can never beat the relaxation's own optimum — an
	// outer approximation that is *beaten* was corrupted.
	if res.X != nil && len(res.X) == p.NumVars && guard.AllFinite(res.X) {
		if len(low.trail.Passes()) == 0 {
			b.Add("roundtrip", cert.RelGap(res.Objective, low.final.EvalObjective(x)), tol.Obj)
		} else if p.Matrix == nil {
			relaxed := low.final.EvalObjective(x)
			lifted := p.EvalObjective(res.X)
			beat := lifted - relaxed
			if !p.Obj.Maximize {
				beat = relaxed - lifted
			}
			b.Add("roundtrip", beat/(1+math.Abs(relaxed)), tol.Obj)
		}
	}
}

// certifySDP checks an ADMM answer: equality residuals and PSD membership
// recomputed from the iterate, objective consistency, and the recovered
// dual certificate's gap when the dual slack is clean enough to trust.
func certifySDP(b *cert.Builder, low *loweredForm, o Options, res *Result, tol cert.Tolerances) {
	sp := low.sdp
	X := res.XMat
	if X == nil || X.Rows != X.Cols || X.Rows != sp.C.Rows || !guard.AllFinite(X.Data) {
		b.Fail("solution")
		return
	}
	// ADMM converges in the splitting residual, so recomputed equality
	// violations inherit its tolerance; the certificate allows that scale
	// plus the policy's own slack.
	admmTol := o.SDP.Tol
	if admmTol == 0 {
		admmTol = 1e-7
	}
	feasTol := tol.Feas + 100*admmTol

	var worst float64
	for i, a := range sp.A {
		var v float64
		for k := range a.Data {
			v += a.Data[k] * X.Data[k]
		}
		if r := math.Abs(v-sp.B[i]) / (1 + math.Abs(sp.B[i])); r > worst {
			worst = r
		}
	}
	b.Add("primal", worst, feasTol)

	// PSD membership, recomputed. The Z-iterate is an exact eigenvalue
	// clip, so an honest answer has λmin >= 0 to rounding; scale by the
	// iterate's own magnitude.
	var maxAbs float64
	for _, v := range X.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if lo, err := mat.MinEigenvalue(X.Clone().Symmetrize()); err == nil {
		b.Add("psd", math.Max(0, -lo)/(1+maxAbs), feasTol)
	} else {
		b.Fail("psd")
	}

	// Objective consistency: ⟨C, X⟩ recomputed with the same
	// symmetrization the backend reports against.
	cSym := sp.C.Clone().Symmetrize()
	var recomputed float64
	for k := range cSym.Data {
		recomputed += cSym.Data[k] * X.Data[k]
	}
	if r := res.SDP; r != nil {
		b.Add("objective", cert.RelGap(r.Objective, recomputed), tol.Obj)
		// Duality-gap sanity: only when the recovered dual point is close
		// enough to feasible for weak duality to mean anything.
		if r.Y != nil && r.DualFeasError() <= feasTol*(1+maxAbs) {
			b.Add("gap", r.Gap/(1+math.Abs(r.Objective)), tol.Gap)
		}
	}
}

// backendObjectives returns the backend's reported optimum and its
// recomputation at x, both in backend units.
func backendObjectives(low *loweredForm, res *Result, x []float64) (reported, recomputed float64, ok bool) {
	switch low.backend {
	case "lp":
		if res.LP == nil {
			return 0, 0, false
		}
		var v float64
		for j := 0; j < len(low.lp.Objective); j++ {
			v += low.lp.Objective[j] * x[j]
		}
		return res.LP.Objective, v, true
	case "minlp":
		if res.MILP == nil {
			return 0, 0, false
		}
		return res.MILP.Objective, backendLinObj(low.final, x), true
	case "qp":
		if res.QP == nil {
			return 0, 0, false
		}
		return res.QP.Objective, low.qp.F0.Eval(x), true
	}
	return 0, 0, false
}

// residualAt returns the maximum relative violation of the vector problem's
// bounds, linear/quadratic rows, and bilinear definitions at x — the
// quantitative counterpart of feasible(). Integrality is certified
// separately. +Inf for a dimension mismatch or non-finite x.
func (p *Problem) residualAt(x []float64) float64 {
	if p.Matrix != nil || len(x) != p.NumVars || !guard.AllFinite(x) {
		return math.Inf(1)
	}
	var worst float64
	viol := func(v, scale float64) {
		if r := v / (1 + math.Abs(scale)); r > worst {
			worst = r
		}
	}
	for j := range x {
		lo, hi := p.Bound(j)
		if !math.IsInf(lo, -1) {
			viol(lo-x[j], lo)
		}
		if !math.IsInf(hi, 1) {
			viol(x[j]-hi, hi)
		}
	}
	for _, c := range p.Lin {
		var v float64
		for j, a := range c.Coeffs {
			v += a * x[j]
		}
		switch c.Sense {
		case LE:
			viol(v-c.RHS, c.RHS)
		case GE:
			viol(c.RHS-v, c.RHS)
		default:
			viol(math.Abs(v-c.RHS), c.RHS)
		}
	}
	for _, c := range p.Quad {
		v := c.R + evalQuadForm(c.P, c.Q, x)
		s := c.Sense
		if s == 0 {
			s = LE
		}
		switch s {
		case LE:
			viol(v, 0)
		case GE:
			viol(-v, 0)
		default:
			viol(math.Abs(v), 0)
		}
	}
	for _, bl := range p.Bilin {
		viol(math.Abs(x[bl.W]-x[bl.X]*x[bl.Y]), x[bl.W])
	}
	return worst
}

// escalated derives the options for escalation rung r of the ladder. Every
// rung solves from scratch (no caller or cache warm start — the point of
// the ladder is independence from whatever produced the failure). Rung 1
// tightens the backend tolerances one decade; later rungs additionally
// perturb the solver trajectory where a backend has a seam for it (barrier
// weight, ADMM penalty), seeded from the problem's content fingerprint so
// the restart is deterministic for a given instance at any worker count.
// The lp and minlp backends are deterministic with no trajectory seam, so
// their later rungs are fresh tightened re-solves; a corruption that
// persists through them degrades the result for the qos ladder to handle.
func escalated(o Options, r int, content uint64) Options {
	eo := o
	eo.X0 = nil
	eo.Incumbent = nil
	eo.SDP.X0 = nil

	tighten := func(v, def float64) float64 {
		if v == 0 {
			v = def
		}
		return v / 10
	}
	eo.QP.Tol = tighten(o.QP.Tol, 1e-8)
	eo.SDP.Tol = tighten(o.SDP.Tol, 1e-7)
	eo.GapTol = tighten(o.GapTol, 1e-9)

	if r >= 2 {
		rr := rng.New(content ^ 0xcedc5ce14db2d871 ^ uint64(r))
		// Jitters stay well inside the solvers' stable parameter ranges:
		// they move the trajectory, not the answer.
		if eo.SDP.Rho == 0 {
			eo.SDP.Rho = 1
		}
		eo.SDP.Rho *= 1 + 0.5*(2*rr.Float64()-1)
		if eo.QP.T0 == 0 {
			eo.QP.T0 = 1
		}
		eo.QP.T0 *= 1 + 2*rr.Float64()
	}
	return eo
}
