package prob

import (
	"fmt"
	"math"

	"repro/internal/lp"
	"repro/internal/mat"
	"repro/internal/minlp"
	"repro/internal/qp"
	"repro/internal/sdp"
)

// This file compiles fully lowered Problems into the concrete backend
// forms. Compilation is mechanical — no relaxation happens here — and is
// deliberately bit-faithful: a Problem built from a formerly hand-assembled
// lp/sdp/qp problem compiles to an element-identical structure, which the
// golden tests in golden_test.go pin.

// LP compiles a continuous, purely linear Problem into the lp backend's
// natural form. Maximize objectives are negated into minimization; the
// caller owns the sign flip of the reported objective (Solve does this).
func (p *Problem) LP() (*lp.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cl := p.Classify(); cl != ClassLP {
		return nil, fmt.Errorf("%w: cannot compile %v to LP (lower it first)", ErrBadProblem, cl)
	}
	out := &lp.Problem{
		NumVars:   p.NumVars,
		Objective: objVector(p.Obj),
		Lo:        p.Lo,
		Hi:        p.Hi,
	}
	for _, c := range p.Lin {
		out.Constraints = append(out.Constraints, lp.Constraint{
			Coeffs: c.Coeffs,
			Sense:  lpSense(c.Sense),
			RHS:    c.RHS,
		})
	}
	return out, nil
}

// MILP compiles an integral, purely linear Problem into the minlp backend's
// MILP form.
func (p *Problem) MILP() (*minlp.MILP, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cl := p.Classify(); cl != ClassMILP && cl != ClassLP {
		return nil, fmt.Errorf("%w: cannot compile %v to MILP (lower it first)", ErrBadProblem, cl)
	}
	relaxed := p.Clone()
	relaxed.Integer = nil
	core, err := relaxed.LP()
	if err != nil {
		return nil, err
	}
	return &minlp.MILP{LP: *core, Integer: append([]int(nil), p.Integer...)}, nil
}

// QP compiles a continuous QCQP into the qp backend's barrier form:
// the quadratic objective maps onto F0, quadratic LE rows onto Ineq,
// linear LE/GE rows onto affine Ineq members, and linear EQ rows onto the
// stacked equality system A x = B. Box bounds become affine inequality
// rows (the barrier has no native bound handling). Maximize objectives are
// negated into minimization.
func (p *Problem) QP() (*qp.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Matrix != nil || len(p.Integer) > 0 || len(p.Bilin) > 0 {
		return nil, fmt.Errorf("%w: cannot compile %v to QP (lower it first)", ErrBadProblem, p.Classify())
	}
	n := p.NumVars
	out := &qp.Problem{F0: qp.Quad{P: p.Obj.Quad, Q: objVector(p.Obj), R: p.Obj.Const}}
	if p.Obj.Maximize {
		out.F0.R = -p.Obj.Const
		if p.Obj.Quad != nil {
			out.F0.P = p.Obj.Quad.Clone().Scale(-1)
		}
	}
	var eqRows [][]float64
	var eqRHS []float64
	addIneq := func(coeffs []float64, rhs float64) {
		// a·x <= b  ⇒  a·x - b <= 0.
		q := make([]float64, n)
		copy(q, coeffs)
		out.Ineq = append(out.Ineq, qp.Quad{Q: q, R: -rhs})
	}
	for _, c := range p.Lin {
		switch c.Sense {
		case LE:
			addIneq(c.Coeffs, c.RHS)
		case GE:
			neg := make([]float64, n)
			for j, v := range c.Coeffs {
				neg[j] = -v
			}
			addIneq(neg, -c.RHS)
		case EQ:
			row := make([]float64, n)
			copy(row, c.Coeffs)
			eqRows = append(eqRows, row)
			eqRHS = append(eqRHS, c.RHS)
		}
	}
	for _, c := range p.Quad {
		if c.Sense == EQ {
			return nil, fmt.Errorf("%w: quadratic equalities are not barrier-representable (lift them instead)", ErrBadProblem)
		}
		out.Ineq = append(out.Ineq, qp.Quad{P: c.P, Q: c.Q, R: c.R})
	}
	// Bounds follow the IR convention uniformly (nil Lo ⇒ 0, nil Hi ⇒ +Inf):
	// a genuinely free variable needs an explicit ±Inf bound.
	for j := 0; j < n; j++ {
		lo, hi := p.Bound(j)
		if !math.IsInf(lo, -1) {
			row := make([]float64, n)
			row[j] = -1
			addIneq(row, -lo)
		}
		if !math.IsInf(hi, 1) {
			row := make([]float64, n)
			row[j] = 1
			addIneq(row, hi)
		}
	}
	if len(eqRows) > 0 {
		a, err := mat.FromRows(eqRows)
		if err != nil {
			return nil, fmt.Errorf("prob: equality system: %w", err)
		}
		out.A = a
		out.B = eqRHS
	}
	return out, nil
}

// SDP compiles a standard-form matrix Problem (MatrixObjInner) into the sdp
// backend's shape. Rank and trace objectives must be lowered first
// (TraceSurrogate, ToSDP).
func (p *Problem) SDP() (*sdp.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Matrix == nil || p.Matrix.Obj != MatrixObjInner {
		return nil, fmt.Errorf("%w: cannot compile %v to SDP (apply TraceSurrogate/ToSDP first)", ErrBadProblem, p.Classify())
	}
	if !p.Matrix.PSD {
		return nil, fmt.Errorf("%w: the sdp backend requires the PSD cone", ErrBadProblem)
	}
	return &sdp.Problem{C: p.Matrix.C, A: p.Matrix.A, B: p.Matrix.B}, nil
}

// objVector returns the minimize-normalized linear objective.
func objVector(o Objective) []float64 {
	if !o.Maximize {
		return o.Lin
	}
	out := make([]float64, len(o.Lin))
	for j, v := range o.Lin {
		out[j] = -v
	}
	return out
}

func lpSense(s Sense) lp.Sense {
	switch s {
	case LE:
		return lp.LE
	case EQ:
		return lp.EQ
	default:
		return lp.GE
	}
}

// NewDiagLowRankRMP states the paper's Eq. 8 rank-minimization problem for
// the diagonal-plus-low-rank split Rs = Rc + Rn (Rc ⪰ 0 and low rank, Rn
// diagonal) as a matrix-block Problem:
//
//	min rank(Rc)  s.t.  (Rc)ᵢⱼ = (Rs)ᵢⱼ for all i < j,  Rc ⪰ 0.
//
// The unconstrained diagonal Rn is already eliminated here — the equality
// Rc + Rn = Rs with Rn free on the diagonal is exactly "the off-diagonal of
// Rc equals the off-diagonal of Rs" — so the RMP, its TMP surrogate
// (TraceSurrogate), and the standard-form SDP (ToSDP) all share one
// constraint set, and Rn is read off the diagonal residual after recovery.
func NewDiagLowRankRMP(rs *mat.Matrix) (*Problem, error) {
	n := rs.Rows
	if rs.Cols != n {
		return nil, fmt.Errorf("%w: Rs is %dx%d, want square", ErrBadProblem, rs.Rows, rs.Cols)
	}
	blk := &MatrixBlock{Dim: n, Obj: MatrixObjRank, PSD: true}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			blk.A = append(blk.A, sdp.BasisElem(n, i, j))
			blk.B = append(blk.B, rs.At(i, j))
		}
	}
	return &Problem{Matrix: blk}, nil
}
