package prob

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Recovery maps a lowered problem's solution back to the problem the pass
// was applied to. Passes return one Recovery each; a pipeline of passes
// composes its recoveries in reverse (see Trail.Lift).
type Recovery struct {
	// Pass names the lowering that produced this recovery ("relax-integrality",
	// "mccormick", "lift-rank", "trace-surrogate", "to-sdp").
	Pass string
	// lift rewrites the result in place from the lowered space to the
	// upper space; nil means the identity.
	lift func(*Result)
}

// Lift maps res from the lowered solution space back to the space of the
// problem this pass was applied to. The result is modified in place and
// returned; its Trail is untouched (provenance describes the whole run).
func (r *Recovery) Lift(res *Result) *Result {
	if r != nil && r.lift != nil && res != nil {
		r.lift(res)
	}
	return res
}

// Trail is the ordered sequence of recoveries produced by a lowering
// pipeline: Trail[0] belongs to the first pass applied.
type Trail []*Recovery

// Lift maps a solution of the fully lowered problem back to the original
// space by applying the recoveries last-to-first.
func (t Trail) Lift(res *Result) *Result {
	for i := len(t) - 1; i >= 0; i-- {
		res = t[i].Lift(res)
	}
	return res
}

// Passes returns the pass names in application order.
func (t Trail) Passes() []string {
	out := make([]string, len(t))
	for i, r := range t {
		out[i] = r.Pass
	}
	return out
}

// Pass is one pure lowering: it returns a new Problem (the input is never
// mutated) plus the Recovery mapping solutions back up.
type Pass func(*Problem) (*Problem, *Recovery, error)

// Lower applies passes in order and returns the final problem plus the
// recovery trail.
func Lower(p *Problem, passes ...Pass) (*Problem, Trail, error) {
	var trail Trail
	for _, pass := range passes {
		var rec *Recovery
		var err error
		p, rec, err = pass(p)
		if err != nil {
			return nil, nil, err
		}
		trail = append(trail, rec)
	}
	return p, trail, nil
}

// RelaxIntegrality drops the integrality marks — the MINLP → continuous
// step (MINLP → QCQP when quadratic blocks remain, MILP → LP otherwise;
// the move the paper's relaxed verifiers make). The recovery rounds the
// relaxed solution's integer coordinates to the nearest integer, clipped
// into the variable's box, so the lifted point is integral (though not
// necessarily feasible — rounding is the caller's repair problem, as in
// qos.SolveRelaxed).
func RelaxIntegrality(p *Problem) (*Problem, *Recovery, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if p.Matrix != nil {
		return nil, nil, fmt.Errorf("%w: relax-integrality applies to vector problems", ErrBadProblem)
	}
	q := p.Clone()
	ints := q.Integer
	q.Integer = nil
	bounds := p // bounds are read from the original problem at lift time
	rec := &Recovery{Pass: "relax-integrality", lift: func(res *Result) {
		if res.X == nil {
			return
		}
		for _, j := range ints {
			lo, hi := bounds.Bound(j)
			v := math.Round(res.X[j])
			if v < lo {
				v = lo
			}
			if v > hi {
				v = hi
			}
			res.X[j] = v
		}
	}}
	return q, rec, nil
}

// plane2 is one McCormick envelope plane a·x + b·y + c. The construction
// mirrors relax.McCormick equation-for-equation (that package remains the
// documented reference; a cross-check test pins the two equal) but is inlined
// here so the IR stays a leaf below relax, which itself lowers through prob.
type plane2 struct{ a, b, c float64 }

// mccormickPlanes returns the two under-estimator and two over-estimator
// planes of w = x·y over the box [xlo,xhi]×[ylo,yhi].
func mccormickPlanes(xlo, xhi, ylo, yhi float64) (under, over [2]plane2, err error) {
	for _, v := range [...]float64{xlo, xhi, ylo, yhi} {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return under, over, fmt.Errorf("%w: mccormick needs finite bounds, got x∈[%g,%g] y∈[%g,%g]", ErrBadProblem, xlo, xhi, ylo, yhi)
		}
	}
	if xlo > xhi || ylo > yhi {
		return under, over, fmt.Errorf("%w: empty box x∈[%g,%g] y∈[%g,%g]", ErrBadProblem, xlo, xhi, ylo, yhi)
	}
	under = [2]plane2{
		{a: ylo, b: xlo, c: -xlo * ylo}, // w >= ylo·x + xlo·y - xlo·ylo
		{a: yhi, b: xhi, c: -xhi * yhi}, // w >= yhi·x + xhi·y - xhi·yhi
	}
	over = [2]plane2{
		{a: ylo, b: xhi, c: -xhi * ylo}, // w <= ylo·x + xhi·y - xhi·ylo
		{a: yhi, b: xlo, c: -xlo * yhi}, // w <= yhi·x + xlo·y - xlo·yhi
	}
	return under, over, nil
}

// McCormick replaces every bilinear equality w = x·y with its four-plane
// linear envelope over the box of x and y: two convex under-estimator rows
// w >= plane and two concave over-estimator rows w <= plane. Every bilinear
// variable triple needs finite bounds on x and y. The recovery restores
// feasibility of the lifted point in the original nonconvex space by
// recomputing w = x·y exactly.
func McCormick(p *Problem) (*Problem, *Recovery, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if p.Matrix != nil {
		return nil, nil, fmt.Errorf("%w: mccormick applies to vector problems", ErrBadProblem)
	}
	q := p.Clone()
	terms := q.Bilin
	q.Bilin = nil
	for i, b := range terms {
		xlo, xhi := p.Bound(b.X)
		ylo, yhi := p.Bound(b.Y)
		under, over, err := mccormickPlanes(xlo, xhi, ylo, yhi)
		if err != nil {
			return nil, nil, fmt.Errorf("prob: mccormick term %d (w=x%d·x%d): %w", i, b.X, b.Y, err)
		}
		// Under-estimators: w >= a·x + b·y + c  ⇒  w - a·x - b·y >= c.
		for _, pl := range under {
			q.Lin = append(q.Lin, envelopeRow(p.NumVars, b, pl, GE))
		}
		// Over-estimators: w <= a·x + b·y + c  ⇒  w - a·x - b·y <= c.
		for _, pl := range over {
			q.Lin = append(q.Lin, envelopeRow(p.NumVars, b, pl, LE))
		}
	}
	rec := &Recovery{Pass: "mccormick", lift: func(res *Result) {
		if res.X == nil {
			return
		}
		for _, b := range terms {
			res.X[b.W] = res.X[b.X] * res.X[b.Y]
		}
	}}
	return q, rec, nil
}

// envelopeRow encodes w - a·x - b·y (sense) c for one McCormick plane.
func envelopeRow(n int, b Bilinear, pl plane2, sense Sense) LinCon {
	row := make([]float64, n)
	row[b.W] = 1
	row[b.X] -= pl.a
	row[b.Y] -= pl.b
	return LinCon{Coeffs: row, Sense: sense, RHS: pl.c}
}

// LiftRank lifts a continuous, equality-constrained QCQP (Eq. 7) to the
// rank-constrained matrix problem (RMP, Eq. 8) over the homogenized
// variable Y = [1 xᵀ; x xxᵀ] ⪰ 0 of dimension n+1:
//
//   - each linear equality aᵀx = b becomes ⟨[0 aᵀ/2; a/2 0], Y⟩ = b;
//   - each quadratic equality ½xᵀPx + qᵀx + r = 0 becomes ⟨M, Y⟩ = 0
//     with M = [r qᵀ/2; q/2 P/2];
//   - the homogenization pin ⟨e₀e₀ᵀ, Y⟩ = 1 fixes the corner;
//   - the dropped rank(Y) = 1 condition is what makes the lift exact; it
//     survives as the RMP's MatrixObjRank objective, which TraceSurrogate
//     then relaxes to the trace (Eq. 9).
//
// Inequality rows, integrality, bilinear terms, and bounds are not
// representable in the equality-only matrix block and are rejected; they
// must be lowered away (RelaxIntegrality, McCormick) first. The recovery
// reads x back out of the lifted solution's first column: xⱼ = Y₍ⱼ₊₁₎₀/Y₀₀.
func LiftRank(p *Problem) (*Problem, *Recovery, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if p.Matrix != nil {
		return nil, nil, fmt.Errorf("%w: lift-rank applies to vector problems", ErrBadProblem)
	}
	if len(p.Integer) > 0 || len(p.Bilin) > 0 {
		return nil, nil, fmt.Errorf("%w: lift-rank needs a continuous problem without bilinear terms (lower integrality and bilinears first)", ErrBadProblem)
	}
	if p.Lo != nil || p.Hi != nil {
		return nil, nil, fmt.Errorf("%w: lift-rank cannot encode box bounds in the equality-only matrix block", ErrBadProblem)
	}
	n := p.NumVars
	dim := n + 1
	blk := &MatrixBlock{Dim: dim, Obj: MatrixObjRank, PSD: true}
	// Homogenization pin Y₀₀ = 1.
	pin := mat.New(dim, dim)
	pin.Set(0, 0, 1)
	blk.A = append(blk.A, pin)
	blk.B = append(blk.B, 1)
	for i, c := range p.Lin {
		if c.Sense != EQ {
			return nil, nil, fmt.Errorf("%w: lift-rank supports equality rows only (row %d is %v)", ErrBadProblem, i, c.Sense)
		}
		a := mat.New(dim, dim)
		for j, v := range c.Coeffs {
			a.Set(0, j+1, v/2)
			a.Set(j+1, 0, v/2)
		}
		blk.A = append(blk.A, a)
		blk.B = append(blk.B, c.RHS)
	}
	for i, c := range p.Quad {
		if c.Sense != EQ {
			return nil, nil, fmt.Errorf("%w: lift-rank supports equality quadratics only (constraint %d is %v)", ErrBadProblem, i, c.Sense)
		}
		blk.A = append(blk.A, liftQuad(dim, c.P, c.Q, c.R))
		blk.B = append(blk.B, 0)
	}
	q := &Problem{Matrix: blk}
	rec := &Recovery{Pass: "lift-rank", lift: func(res *Result) {
		if res.XMat == nil {
			return
		}
		y00 := res.XMat.At(0, 0)
		if y00 == 0 {
			y00 = 1
		}
		x := make([]float64, n)
		for j := 0; j < n; j++ {
			x[j] = res.XMat.At(j+1, 0) / y00
		}
		res.X = x
		res.XMat = nil
		// Re-evaluate the original objective at the recovered point: the
		// lowered objective (rank/trace) is a surrogate, not the QCQP value.
		res.Objective = p.Obj.Const + evalQuadForm(p.Obj.Quad, p.Obj.Lin, x)
	}}
	return q, rec, nil
}

// liftQuad builds the homogenized matrix M = [r qᵀ/2; q/2 P/2] so that
// ⟨M, [1 xᵀ; x xxᵀ]⟩ = ½xᵀPx + qᵀx + r.
func liftQuad(dim int, pm *mat.Matrix, q []float64, r float64) *mat.Matrix {
	m := mat.New(dim, dim)
	m.Set(0, 0, r)
	for j, v := range q {
		m.Add(0, j+1, v/2)
		m.Add(j+1, 0, v/2)
	}
	if pm != nil {
		for i := 0; i < pm.Rows; i++ {
			for j := 0; j < pm.Cols; j++ {
				// Symmetrized half: ⟨P/2, xxᵀ⟩ = ½xᵀPx for symmetric P.
				m.Add(i+1, j+1, (pm.At(i, j)+pm.At(j, i))/4)
			}
		}
	}
	return m
}

// evalQuadForm returns ½xᵀPx + qᵀx.
func evalQuadForm(pm *mat.Matrix, q []float64, x []float64) float64 {
	var v float64
	for j, qj := range q {
		//lint:ignore dimcheck Validate pins len(q) <= NumVars == len(x) before any pass runs
		v += qj * x[j]
	}
	if pm != nil {
		for i := 0; i < pm.Rows; i++ {
			var row float64
			for j := 0; j < pm.Cols; j++ {
				row += pm.At(i, j) * x[j]
			}
			v += 0.5 * x[i] * row
		}
	}
	return v
}

// TraceSurrogate replaces the RMP's nonconvex rank objective with the trace
// (Eq. 8 → Eq. 9): over the PSD cone the trace is the tightest convex
// surrogate of the rank (the nuclear-norm relaxation). Constraints are
// untouched; the recovery is the identity because the variable space does
// not change — only the objective is surrogated.
func TraceSurrogate(p *Problem) (*Problem, *Recovery, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if p.Matrix == nil || p.Matrix.Obj != MatrixObjRank {
		return nil, nil, fmt.Errorf("%w: trace-surrogate applies to rank-objective matrix problems (RMP)", ErrBadProblem)
	}
	q := p.Clone()
	q.Matrix.Obj = MatrixObjTrace
	return q, &Recovery{Pass: "trace-surrogate"}, nil
}

// ToSDP rewrites the TMP's trace objective as the standard-form inner
// product ⟨I, X⟩ (Eq. 9 → Eq. 10), the exact shape the sdp backend accepts.
// The recovery is the identity.
func ToSDP(p *Problem) (*Problem, *Recovery, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if p.Matrix == nil || p.Matrix.Obj != MatrixObjTrace {
		return nil, nil, fmt.Errorf("%w: to-sdp applies to trace-objective matrix problems (TMP)", ErrBadProblem)
	}
	q := p.Clone()
	q.Matrix.Obj = MatrixObjInner
	q.Matrix.C = mat.Identity(q.Matrix.Dim)
	return q, &Recovery{Pass: "to-sdp"}, nil
}

