package prob_test

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/guard"
	"repro/internal/par"
	"repro/internal/prob"
)

// solveAll solves every problem through one cache and asserts convergence.
func solveAll(t *testing.T, c *prob.Cache, ps []*prob.Problem) []*prob.Result {
	t.Helper()
	out := make([]*prob.Result, len(ps))
	for i, p := range ps {
		res, err := prob.Solve(p, prob.Options{Cache: c})
		if err != nil {
			t.Fatalf("problem %d: %v", i, err)
		}
		if res.Status != guard.StatusConverged {
			t.Fatalf("problem %d status %v", i, res.Status)
		}
		out[i] = res
	}
	return out
}

func TestCacheSnapshotLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	workload := []*prob.Problem{wireMILP(1, 0.25), wireMILP(2, 0.25), wireMILP(3, 0.25)}

	warm := prob.NewCache()
	solveAll(t, warm, workload)
	snap, err := warm.Snapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Entries != 1 {
		// All three instances share one shape fingerprint; the cache keys
		// by shape, so the snapshot carries the latest entry.
		t.Fatalf("snapshot wrote %d entries, want 1 (single shape)", snap.Entries)
	}
	if snap.Incumbents != 1 {
		t.Fatalf("snapshot carried %d incumbents, want 1", snap.Incumbents)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmps) != 0 {
		t.Fatalf("atomic rename left temp files: %v", tmps)
	}

	restored := prob.NewCache()
	st, err := restored.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := prob.LoadStats{Files: 16, Entries: 1, Recertified: 1}
	if st != want {
		t.Fatalf("LoadStats = %+v, want %+v", st, want)
	}

	// A content-identical re-solve through the restored cache is a cache
	// hit; the results match the warm cache's bit for bit.
	last := workload[len(workload)-1]
	fromDisk, err := prob.Solve(last, prob.Options{Cache: restored})
	if err != nil {
		t.Fatal(err)
	}
	if !fromDisk.CacheHit {
		t.Fatal("restored cache did not serve a content-identical hit")
	}
	inMem, err := prob.Solve(last, prob.Options{Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, fromDisk, inMem)
}

// assertBitIdentical compares the externally visible solve outcome bitwise.
func assertBitIdentical(t *testing.T, a, b *prob.Result) {
	t.Helper()
	if !reflect.DeepEqual(a.X, b.X) {
		t.Errorf("X diverges:\n a: %v\n b: %v", a.X, b.X)
	}
	if math.Float64bits(a.Objective) != math.Float64bits(b.Objective) {
		t.Errorf("objective bits diverge: %x vs %x", math.Float64bits(a.Objective), math.Float64bits(b.Objective))
	}
	if a.Status != b.Status || a.Backend != b.Backend {
		t.Errorf("status/backend diverge: %v/%s vs %v/%s", a.Status, a.Backend, b.Status, b.Backend)
	}
	if !reflect.DeepEqual(a.Trail, b.Trail) {
		t.Errorf("trails diverge:\n a: %v\n b: %v", a.Trail, b.Trail)
	}
}

// TestLoadedWarmStartBitIdentical is the acceptance pin: a same-shape,
// new-content re-solve seeded by a disk-loaded incumbent is bit-identical
// to one seeded by the in-memory incumbent it was saved from, at
// RCR_WORKERS=1 and 8.
func TestLoadedWarmStartBitIdentical(t *testing.T) {
	for _, workers := range []string{"1", "8"} {
		t.Run("workers="+workers, func(t *testing.T) {
			t.Setenv(par.EnvWorkers, workers)
			dir := t.TempDir()
			seedProb := wireMILP(21, 0.25)

			inMem := prob.NewCache()
			solveAll(t, inMem, []*prob.Problem{seedProb})
			if _, err := inMem.Snapshot(dir); err != nil {
				t.Fatal(err)
			}
			fromDisk := prob.NewCache()
			st, err := fromDisk.Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if st.Recertified != 1 {
				t.Fatalf("LoadStats = %+v, want 1 recertified incumbent", st)
			}

			// Same shape, different content: this path exercises the warm
			// start (incumbent seeding), not the content-identical hit.
			next := wireMILP(22, 0.5)
			a, err := prob.Solve(next, prob.Options{Cache: fromDisk})
			if err != nil {
				t.Fatal(err)
			}
			b, err := prob.Solve(next, prob.Options{Cache: inMem})
			if err != nil {
				t.Fatal(err)
			}
			if !a.CacheHit && !a.WarmStarted {
				t.Fatalf("disk-loaded solve used no cached state: %+v", a)
			}
			if a.WarmStarted != b.WarmStarted || a.CacheHit != b.CacheHit {
				t.Fatalf("cache path diverges: disk hit=%v warm=%v, mem hit=%v warm=%v",
					a.CacheHit, a.WarmStarted, b.CacheHit, b.WarmStarted)
			}
			assertBitIdentical(t, a, b)
		})
	}
}

func TestLoadFormsOnlyDropsIncumbents(t *testing.T) {
	dir := t.TempDir()
	warm := prob.NewCache()
	solveAll(t, warm, []*prob.Problem{wireMILP(5, 0.25)})
	if _, err := warm.Snapshot(dir); err != nil {
		t.Fatal(err)
	}

	restored := prob.NewCache().DisableWarmStarts()
	st, err := restored.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Recertified != 0 || st.Rejected != 0 {
		t.Fatalf("forms-only LoadStats = %+v, want 1 entry, 0 recertified/rejected", st)
	}
	res, err := prob.Solve(wireMILP(5, 0.25), prob.Options{Cache: restored})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("forms-only restored cache did not reuse the compiled form")
	}
	if res.WarmStarted {
		t.Fatal("forms-only restored cache leaked a warm start")
	}
}

func TestLoadMissingDirIsEmpty(t *testing.T) {
	c := prob.NewCache()
	st, err := c.Load(filepath.Join(t.TempDir(), "never-written"))
	if err != nil {
		t.Fatal(err)
	}
	if st != (prob.LoadStats{}) {
		t.Fatalf("missing dir LoadStats = %+v, want zero", st)
	}
}

func TestLoadLiveEntryWins(t *testing.T) {
	dir := t.TempDir()
	old := prob.NewCache()
	solveAll(t, old, []*prob.Problem{wireMILP(6, 0.25)})
	if _, err := old.Snapshot(dir); err != nil {
		t.Fatal(err)
	}

	// The live cache has already solved a same-shape, different-content
	// instance; Load must not clobber it with the stale snapshot.
	live := prob.NewCache()
	solveAll(t, live, []*prob.Problem{wireMILP(7, 0.5)})
	if _, err := live.Load(dir); err != nil {
		t.Fatal(err)
	}
	res, err := prob.Solve(wireMILP(7, 0.5), prob.Options{Cache: live})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("live entry was clobbered by Load: content-identical solve missed")
	}
}

func TestLoadSkipsCorruptShardTail(t *testing.T) {
	dir := t.TempDir()
	warm := prob.NewCache()
	solveAll(t, warm, []*prob.Problem{wireMILP(8, 0.25)})
	if _, err := warm.Snapshot(dir); err != nil {
		t.Fatal(err)
	}

	// Truncate every non-empty shard file mid-entry: the preamble survives,
	// the entry does not, and Load must skip-and-count rather than error.
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.rcr"))
	if err != nil {
		t.Fatal(err)
	}
	mangled := 0
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		const preamble = 32 + 4 + 8 // header + count payload + checksum
		if len(data) <= preamble {
			continue
		}
		if err := os.WriteFile(f, data[:preamble+10], 0o644); err != nil {
			t.Fatal(err)
		}
		mangled++
	}
	if mangled == 0 {
		t.Fatal("no shard file carried an entry to truncate")
	}

	c := prob.NewCache()
	st, err := c.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Corrupt != mangled || st.Entries != 0 {
		t.Fatalf("LoadStats = %+v, want %d corrupt and 0 loaded", st, mangled)
	}
}
