package prob

import (
	"fmt"
	"math"

	"repro/internal/cert"
	"repro/internal/guard"
	"repro/internal/lp"
	"repro/internal/mat"
	"repro/internal/minlp"
	"repro/internal/qp"
	"repro/internal/sdp"
)

// Options configures Solve. The zero value is usable.
type Options struct {
	// Budget bounds whichever backend runs. It is threaded uniformly: simplex
	// pivots (lp), branch-and-bound nodes and node LPs (minlp), Newton steps
	// (qp), and ADMM iterations (sdp) all check the same budget.
	Budget guard.Budget

	// MILP knobs (forwarded to minlp.Options; zero fields take its defaults).
	MaxNodes int
	IntTol   float64
	GapTol   float64
	// Incumbent warm-starts branch and bound with a known feasible point in
	// the problem's own variable space. Solve verifies feasibility against
	// the lowered problem and computes the backend-sense objective itself,
	// so callers never hand-negate maximize objectives.
	Incumbent []float64

	// QP is the barrier configuration; its Budget field is overwritten with
	// Options.Budget. X0, when non-nil, is the strictly feasible barrier
	// start (otherwise phase 1 or a cached warm start supplies one).
	QP qp.Options
	X0 []float64

	// SDP is the ADMM configuration; its Budget field is overwritten with
	// Options.Budget, and its X0 field — when nil — is filled from the
	// cache's warm start.
	SDP sdp.Options

	// Cache, when non-nil, memoizes lowered forms and warm starts across
	// solves keyed by structural fingerprint (see Cache).
	Cache *Cache

	// Cert configures the a-posteriori certificate every converged result
	// must pass before it leaves Solve (internal/cert; DESIGN.md §11). The
	// zero value arms the certifier with the default tolerance policy and
	// the full escalation ladder.
	Cert CertConfig

	// Tamper, when non-nil, mutates the backend-space result between
	// dispatch and certification. It is the fault-injection seam the chaos
	// suites use to model solver-internal corruption (see the
	// internal/faultinject CorruptMode plans); production callers leave it
	// nil. Escalation re-solves pass through Tamper again — an injected
	// fault stays armed for the whole ladder.
	Tamper func(*Result)
}

// Result is the unified solver output.
type Result struct {
	// X is the solution in the space of the problem handed to Solve (vector
	// problems), after the recovery trail has lifted the backend solution
	// back up the pass chain. Nil when the backend found no point.
	X []float64
	// XMat is the matrix solution (matrix problems). Nil for vector problems.
	XMat *mat.Matrix
	// Objective is the objective value in the problem's own sense: for
	// vector problems it is re-evaluated from the IR at the lifted X (so a
	// maximize problem reports the maximize value, constants included); for
	// matrix problems it is the backend's ⟨C, X⟩. When X is nil it carries
	// the backend's sentinel (±Inf) — check Status first.
	Objective float64
	// Status is the typed termination cause mapped onto the shared guard
	// taxonomy through the backends' canonical Guard() mappings.
	Status guard.Status
	// Backend names the solver that ran: "lp", "minlp", "qp", or "sdp".
	Backend string
	// Trail is the per-pass provenance: the lowering passes applied in
	// order, then "backend:<name>".
	Trail []string
	// CacheHit reports that the compiled backend form was reused verbatim;
	// WarmStarted that a previous solution seeded this solve.
	CacheHit    bool
	WarmStarted bool

	// Cert is the a-posteriori certificate of the returned solution (nil
	// only when Options.Cert.Disable was set). VerdictNone marks results
	// whose typed status already signals failure — there is nothing to
	// certify. A certificate that fails or escalates is also recorded in
	// the Trail ("cert:fail(...)", "cert:retry(n)", "cert:pass"); a clean
	// first-attempt pass keeps the trail as-is.
	Cert *cert.Certificate
	// Residual is the certifier's recomputed primal feasibility residual
	// (maximum relative violation against the lowered problem) at the
	// backend solution; 0 when certification did not run.
	Residual float64
	// Gap is the backend-surfaced optimality evidence, in backend units:
	// the barrier bound m/t (qp), the primal-dual objective disagreement
	// (sdp), or the incumbent-vs-bound gap (minlp). 0 for lp (the simplex
	// surfaces no dual information).
	Gap float64

	// Backend-specific results, populated for the backend that ran. These
	// carry the raw (pre-lift, minimize-sense) numbers — bounds, node
	// counts, residuals, dual certificates.
	LP   *lp.Solution
	MILP *minlp.Result
	QP   *qp.Result
	SDP  *sdp.Result
}

// loweredForm is a compiled, dispatch-ready problem: the implicit lowering
// passes Solve applied, the final IR, and the backend form it compiled to.
type loweredForm struct {
	backend string
	trail   Trail
	final   *Problem
	lp      *lp.Problem
	milp    *minlp.MILP
	qp      *qp.Problem
	sdp     *sdp.Problem
}

// Solve dispatches the problem to the lp/qp/sdp/minlp backend selected by
// inspecting its constraint blocks, applying the convex lowering passes that
// need no modeling decision first:
//
//	RMP  → TraceSurrogate → ToSDP → sdp     (Eq. 8 → 9 → 10)
//	TMP  → ToSDP → sdp                      (Eq. 9 → 10)
//	SDP  → sdp                              (Eq. 10)
//	bilinear blocks → McCormick, then:
//	MILP → minlp        QCQP → qp        LP → lp
//
// A MINLP (integrality plus quadratics) has no backend: the caller must
// choose the Eq. 7 step explicitly (RelaxIntegrality) because dropping
// integrality changes what "solution" means. Solutions are lifted back to
// the input space through the recovery trail; Result.Trail records the
// passes. Errors from interrupted runs are *guard.Error values returned
// alongside a usable partial Result, mirroring the backends.
func Solve(p *Problem, o Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var fp Fingerprint
	var ent *cacheEntry
	fpDone := false
	if o.Cache != nil {
		fp = p.Fingerprint()
		fpDone = true
		ent = o.Cache.lookup(fp.Shape)
	}
	var low *loweredForm
	hit := false
	if ent != nil && ent.content == fp.Content && ent.low != nil {
		low, hit = ent.low, true
	} else {
		var err error
		low, err = lowerForBackend(p)
		if err != nil {
			return nil, err
		}
	}

	// attempt runs one dispatch under ao: backend solve, the fault-injection
	// seam, then recovery lifting. The backend-space solution is captured
	// before lifting mutates X in place — it is what certification checks
	// against the lowered problem and what the cache stores.
	attempt := func(ao Options, aent *cacheEntry) (res *Result, backendX []float64, backendXMat *mat.Matrix, rejected bool, err error) {
		res, rejected, err = dispatch(low, ao, aent)
		if res == nil {
			return nil, nil, nil, rejected, err
		}
		if ao.Tamper != nil {
			ao.Tamper(res)
		}
		res.CacheHit = hit
		res.Trail = append(low.trail.Passes(), "backend:"+low.backend)
		backendX = cloneF(res.X)
		backendXMat = res.XMat
		low.trail.Lift(res)
		if p.Matrix == nil && res.X != nil {
			// Report the objective of the problem as stated (own sense,
			// constants included) at the lifted point; the raw backend
			// value survives in the backend-specific result.
			res.Objective = p.EvalObjective(res.X)
		}
		return res, backendX, backendXMat, rejected, err
	}

	res, backendX, backendXMat, rejected, err := attempt(o, ent)
	if rejected {
		// The cached solution failed warm-start re-verification against
		// this instance: evict it once instead of re-checking (and
		// re-rejecting) it on every future same-shape lookup.
		o.Cache.quarantine(fp.Shape)
	}
	if res == nil {
		o.Cache.record(hit, false)
		return nil, err
	}
	o.Cache.record(hit, res.WarmStarted)

	if !o.Cert.Disable {
		c := certifyAttempt(p, low, o, res, backendX)
		res.Cert = c
		if c.Verdict == cert.VerdictFail {
			// A poisoned answer must never warm-start another solve, even
			// if a later rung recovers: the cached solution predates the
			// failure and shares its provenance.
			o.Cache.quarantine(fp.Shape)
			certTrail := []string{"cert:" + c.String()}
			if !fpDone {
				// Content bits seed the perturbed-restart rung even when
				// no cache is attached.
				fp = p.Fingerprint()
				fpDone = true
			}
			for r := 1; r <= o.Cert.retries() && c.Verdict == cert.VerdictFail; r++ {
				ro := escalated(o, r, fp.Content)
				res2, bx2, bxm2, _, err2 := attempt(ro, nil)
				if res2 == nil {
					certTrail = append(certTrail, fmt.Sprintf("cert:retry(%d):error", r))
					continue
				}
				c = certifyAttempt(p, low, ro, res2, bx2)
				c.Retries = r
				res2.Cert = c
				certTrail = append(certTrail, fmt.Sprintf("cert:retry(%d)", r), "cert:"+c.String())
				res, backendX, backendXMat, err = res2, bx2, bxm2, err2
			}
			res.Trail = append(res.Trail, certTrail...)
			if c.Verdict == cert.VerdictFail {
				// Degrade: a converged status must never leave Solve with
				// an uncertified solution attached. StatusDiverged is the
				// taxonomy's "numbers cannot be trusted" cause; the qos
				// ladder treats it as a rung failure and falls through.
				if res.Status == guard.StatusConverged || res.Status == guard.StatusOK {
					res.Status = guard.StatusDiverged
				}
				if err == nil {
					err = guard.Err(guard.StatusDiverged, "prob: result failed certification: %s", c)
				}
			}
		}
	}

	certOK := res.Cert == nil || res.Cert.Verdict != cert.VerdictFail
	if (backendX != nil || backendXMat != nil) && res.Status != guard.StatusDiverged && certOK {
		o.Cache.store(p, fp, low, backendX, backendXMat)
	}
	return res, err
}

// lowerForBackend applies the implicit (decision-free) lowering passes and
// compiles the result for its backend.
func lowerForBackend(p *Problem) (*loweredForm, error) {
	var passes []Pass
	if p.Matrix != nil {
		switch p.Matrix.Obj {
		case MatrixObjRank:
			passes = append(passes, TraceSurrogate, ToSDP)
		case MatrixObjTrace:
			passes = append(passes, ToSDP)
		}
	} else if len(p.Bilin) > 0 {
		passes = append(passes, McCormick)
	}
	q, trail, err := Lower(p, passes...)
	if err != nil {
		return nil, err
	}
	lf := &loweredForm{trail: trail, final: q}
	switch cl := q.Classify(); cl {
	case ClassSDP:
		lf.backend = "sdp"
		lf.sdp, err = q.SDP()
	case ClassMILP:
		lf.backend = "minlp"
		lf.milp, err = q.MILP()
	case ClassQCQP:
		lf.backend = "qp"
		lf.qp, err = q.QP()
	case ClassLP:
		lf.backend = "lp"
		lf.lp, err = q.LP()
	default:
		return nil, fmt.Errorf("%w: no backend for %v — apply RelaxIntegrality (Eq. 7) or LiftRank (Eq. 8) first", ErrBadProblem, cl)
	}
	if err != nil {
		return nil, err
	}
	return lf, nil
}

// dispatch runs the backend for the lowered form. The returned Result holds
// the backend-space solution (X cloned so recovery lifts never alias the raw
// backend result); err mirrors the backend's error contract. rejected
// reports that the cache entry's solution was offered as a warm start and
// failed its re-verification — the caller quarantines it so the check is
// never repeated against the same poisoned solution.
func dispatch(low *loweredForm, o Options, ent *cacheEntry) (res *Result, rejected bool, err error) {
	switch low.backend {
	case "lp":
		sol, err := lp.SolveBudget(low.lp, o.Budget)
		if sol == nil {
			return nil, false, err
		}
		res := &Result{Backend: "lp", LP: sol, X: cloneF(sol.X), Objective: sol.Objective}
		res.Status = sol.Guard
		if res.Status == guard.StatusOK {
			res.Status = sol.Status.Guard()
		}
		return res, false, err

	case "minlp":
		mo := minlp.Options{
			MaxNodes: o.MaxNodes,
			IntTol:   o.IntTol,
			GapTol:   o.GapTol,
			Budget:   o.Budget,
		}
		warm := false
		// Candidate incumbents: the caller's, then the cache's previous
		// solution. Each must be feasible for the *lowered* problem being
		// solved (an infeasible incumbent would prune the true optimum);
		// the backend-sense objective is computed here, never by callers.
		best := math.Inf(1)
		consider := func(x []float64, fromCache bool) {
			if x == nil {
				return
			}
			if !low.final.feasible(x, incumbentTol) {
				if fromCache {
					rejected = true
				}
				return
			}
			if v := backendLinObj(low.final, x); v < best {
				best = v
				mo.Incumbent = cloneF(x)
				mo.IncumbentObj = v
				warm = fromCache
			}
		}
		consider(o.Incumbent, false)
		if ent != nil {
			consider(ent.x, true)
		}
		r, err := minlp.SolveMILP(low.milp, mo)
		if r == nil {
			return nil, rejected, err
		}
		res := &Result{Backend: "minlp", MILP: r, X: cloneF(r.X), Objective: r.Objective, WarmStarted: warm}
		if r.X != nil && guard.Finite(r.Gap()) {
			res.Gap = r.Gap()
		}
		res.Status = r.Guard
		if res.Status == guard.StatusOK {
			res.Status = r.Status.Guard()
		}
		return res, rejected, err

	case "qp":
		qo := o.QP
		qo.Budget = o.Budget
		x0 := o.X0
		warm := false
		if x0 == nil && ent != nil && ent.x != nil {
			if qpStrictlyFeasible(low.qp, ent.x) {
				x0 = cloneF(ent.x)
				warm = true
			} else {
				rejected = true
			}
		}
		r, err := qp.Solve(low.qp, x0, qo)
		if r == nil {
			return nil, rejected, err
		}
		res := &Result{Backend: "qp", QP: r, X: cloneF(r.X), Objective: r.Objective, WarmStarted: warm, Gap: r.Gap}
		res.Status = r.Status
		if res.Status == guard.StatusOK {
			res.Status = guard.StatusConverged
		}
		return res, rejected, err

	default: // "sdp"
		so := o.SDP
		so.Budget = o.Budget
		warm := false
		if so.X0 == nil && ent != nil && ent.xMat != nil {
			so.X0 = ent.xMat
			warm = true
		}
		r, err := sdp.Solve(low.sdp, so)
		if r == nil {
			return nil, false, err
		}
		res := &Result{Backend: "sdp", SDP: r, XMat: r.X, Objective: r.Objective, WarmStarted: warm, Gap: r.Gap}
		res.Status = r.Status
		if res.Status == guard.StatusOK {
			res.Status = guard.StatusConverged
		}
		return res, false, err
	}
}

// incumbentTol is the feasibility slack (relative to 1+|rhs|) accepted when
// verifying a warm-start incumbent against the lowered problem.
const incumbentTol = 1e-6

// EvalObjective returns the vector objective ½xᵀQx + cᵀx + const at x, in
// the problem's own sense (no maximize negation).
func (p *Problem) EvalObjective(x []float64) float64 {
	return p.Obj.Const + evalQuadForm(p.Obj.Quad, p.Obj.Lin, x)
}

// backendLinObj returns the minimize-sense linear objective the backend
// optimizes (maximize problems are negated, constants dropped) — the units
// minlp incumbent pruning compares node bounds against.
func backendLinObj(p *Problem, x []float64) float64 {
	var v float64
	for j, c := range p.Obj.Lin {
		//lint:ignore dimcheck feasible() has already checked len(x) == NumVars >= len(Obj.Lin)
		v += c * x[j]
	}
	if p.Obj.Maximize {
		v = -v
	}
	return v
}

// feasible reports whether x satisfies the vector problem's bounds,
// integrality marks, and constraint rows to within tol (relative to 1+|rhs|).
func (p *Problem) feasible(x []float64, tol float64) bool {
	if p.Matrix != nil || len(x) != p.NumVars || !guard.AllFinite(x) {
		return false
	}
	for j := range x {
		lo, hi := p.Bound(j)
		if x[j] < lo-tol || x[j] > hi+tol {
			return false
		}
	}
	for _, j := range p.Integer {
		if math.Abs(x[j]-math.Round(x[j])) > tol {
			return false
		}
	}
	rowOK := func(v, rhs float64, s Sense) bool {
		slack := tol * (1 + math.Abs(rhs))
		switch s {
		case LE:
			return v <= rhs+slack
		case GE:
			return v >= rhs-slack
		default:
			return math.Abs(v-rhs) <= slack
		}
	}
	for _, c := range p.Lin {
		var v float64
		for j, a := range c.Coeffs {
			v += a * x[j]
		}
		if !rowOK(v, c.RHS, c.Sense) {
			return false
		}
	}
	for _, c := range p.Quad {
		v := c.R + evalQuadForm(c.P, c.Q, x)
		s := c.Sense
		if s == 0 {
			s = LE
		}
		if !rowOK(v, 0, s) {
			return false
		}
	}
	for _, b := range p.Bilin {
		if math.Abs(x[b.W]-x[b.X]*x[b.Y]) > tol*(1+math.Abs(x[b.W])) {
			return false
		}
	}
	return true
}

// qpStrictlyFeasible reports whether x is a valid barrier start for the
// compiled QP: strictly inside every inequality and on the equality
// manifold (the Newton/KKT step preserves Ax=b only from a point that
// satisfies it).
func qpStrictlyFeasible(q *qp.Problem, x []float64) bool {
	if x == nil || !guard.AllFinite(x) {
		return false
	}
	n := len(q.F0.Q)
	if n == 0 && q.F0.P != nil {
		n = q.F0.P.Rows
	}
	if len(x) != n {
		return false
	}
	for i := range q.Ineq {
		if q.Ineq[i].Eval(x) >= 0 {
			return false
		}
	}
	if q.A != nil && q.A.Rows > 0 {
		ax, err := q.A.MulVec(x)
		if err != nil {
			return false
		}
		for i, v := range ax {
			if math.Abs(v-q.B[i]) > 1e-8*(1+math.Abs(q.B[i])) {
				return false
			}
		}
	}
	return true
}
