package prob_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/guard"
	"repro/internal/mat"
	"repro/internal/prob"
	"repro/internal/relax"
)

func mustMat(t *testing.T, rows [][]float64) *mat.Matrix {
	t.Helper()
	m, err := mat.FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestClassify(t *testing.T) {
	quad := mustMat(t, [][]float64{{1}})
	cases := []struct {
		name string
		p    *prob.Problem
		want prob.Class
	}{
		{"lp", &prob.Problem{NumVars: 1, Obj: prob.Objective{Lin: []float64{1}}}, prob.ClassLP},
		{"milp", &prob.Problem{NumVars: 1, Integer: []int{0}}, prob.ClassMILP},
		{"qcqp-obj", &prob.Problem{NumVars: 1, Obj: prob.Objective{Quad: quad}}, prob.ClassQCQP},
		{"qcqp-con", &prob.Problem{NumVars: 1, Quad: []prob.QuadCon{{Q: []float64{1}, Sense: prob.LE}}}, prob.ClassQCQP},
		{"qcqp-bilin", &prob.Problem{NumVars: 3, Bilin: []prob.Bilinear{{W: 2, X: 0, Y: 1}}}, prob.ClassQCQP},
		{"minlp", &prob.Problem{NumVars: 1, Integer: []int{0}, Obj: prob.Objective{Quad: quad}}, prob.ClassMINLP},
		{"rmp", &prob.Problem{Matrix: &prob.MatrixBlock{Dim: 2, Obj: prob.MatrixObjRank, PSD: true}}, prob.ClassRMP},
		{"tmp", &prob.Problem{Matrix: &prob.MatrixBlock{Dim: 2, Obj: prob.MatrixObjTrace, PSD: true}}, prob.ClassTMP},
		{"sdp", &prob.Problem{Matrix: &prob.MatrixBlock{Dim: 2, Obj: prob.MatrixObjInner, PSD: true}}, prob.ClassSDP},
	}
	for _, c := range cases {
		if got := c.p.Classify(); got != c.want {
			t.Errorf("%s: Classify() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	id2 := mat.Identity(2)
	cases := []struct {
		name string
		p    *prob.Problem
	}{
		{"matrix+vector", &prob.Problem{NumVars: 1, Matrix: &prob.MatrixBlock{Dim: 2, Obj: prob.MatrixObjRank}}},
		{"obj too long", &prob.Problem{NumVars: 1, Obj: prob.Objective{Lin: []float64{1, 2}}}},
		{"lo length", &prob.Problem{NumVars: 2, Lo: []float64{0}}},
		{"row too long", &prob.Problem{NumVars: 1, Lin: []prob.LinCon{{Coeffs: []float64{1, 2}, Sense: prob.LE}}}},
		{"bad sense", &prob.Problem{NumVars: 1, Lin: []prob.LinCon{{Coeffs: []float64{1}, Sense: prob.Sense(7)}}}},
		{"quad GE", &prob.Problem{NumVars: 1, Quad: []prob.QuadCon{{Q: []float64{1}, Sense: prob.GE}}}},
		{"integer range", &prob.Problem{NumVars: 1, Integer: []int{1}}},
		{"bilinear range", &prob.Problem{NumVars: 2, Bilin: []prob.Bilinear{{W: 0, X: 1, Y: 2}}}},
		{"matrix dim", &prob.Problem{Matrix: &prob.MatrixBlock{Dim: 0, Obj: prob.MatrixObjRank}}},
		{"matrix a/b mismatch", &prob.Problem{Matrix: &prob.MatrixBlock{Dim: 2, Obj: prob.MatrixObjRank, A: []*mat.Matrix{id2}}}},
		{"inner without C", &prob.Problem{Matrix: &prob.MatrixBlock{Dim: 2, Obj: prob.MatrixObjInner}}},
	}
	for _, c := range cases {
		if err := c.p.Validate(); !errors.Is(err, prob.ErrBadProblem) {
			t.Errorf("%s: Validate() = %v, want ErrBadProblem", c.name, err)
		}
	}
}

// TestMcCormickMatchesRelax pins the promise in passes.go: the inlined
// envelope construction is equation-for-equation identical to the documented
// reference relax.McCormick. Each of the four planes a·x + b·y + c must
// reappear as the IR row w - a·x - b·y (sense) c with bitwise-equal
// coefficients.
func TestMcCormickMatchesRelax(t *testing.T) {
	boxes := []struct{ xlo, xhi, ylo, yhi float64 }{
		{0, 1, 0, 1},
		{-2, 3, 0.5, 4},
		{-1.25, -0.25, -3, 2},
		{0, 0, 1, 1}, // degenerate box
	}
	for _, bx := range boxes {
		p := &prob.Problem{
			NumVars: 3,
			Lo:      []float64{bx.xlo, bx.ylo, math.Inf(-1)},
			Hi:      []float64{bx.xhi, bx.yhi, math.Inf(1)},
			Bilin:   []prob.Bilinear{{W: 2, X: 0, Y: 1}},
		}
		q, rec, err := prob.McCormick(p)
		if err != nil {
			t.Fatalf("box %+v: McCormick pass: %v", bx, err)
		}
		under, over, err := relax.McCormick(relax.Interval{Lo: bx.xlo, Hi: bx.xhi}, relax.Interval{Lo: bx.ylo, Hi: bx.yhi})
		if err != nil {
			t.Fatalf("box %+v: relax.McCormick: %v", bx, err)
		}
		planes := append(append([]relax.Affine2(nil), under...), over...)
		senses := []prob.Sense{prob.GE, prob.GE, prob.LE, prob.LE}
		if len(q.Bilin) != 0 {
			t.Fatalf("box %+v: bilinear block survived the pass", bx)
		}
		if len(q.Lin) != 4 {
			t.Fatalf("box %+v: got %d envelope rows, want 4", bx, len(q.Lin))
		}
		for i, row := range q.Lin {
			pl := planes[i]
			want := []float64{-pl.A, -pl.B, 1}
			for j, v := range want {
				if row.Coeffs[j] != v {
					t.Errorf("box %+v row %d: coeff[%d] = %g, want %g", bx, i, j, row.Coeffs[j], v)
				}
			}
			if row.RHS != pl.C || row.Sense != senses[i] {
				t.Errorf("box %+v row %d: (rhs %g, %v), want (%g, %v)", bx, i, row.RHS, row.Sense, pl.C, senses[i])
			}
		}
		// The recovery restores the exact bilinear equality.
		res := rec.Lift(&prob.Result{X: []float64{0.5, -1.5, 99}})
		if got, want := res.X[2], 0.5*-1.5; got != want {
			t.Errorf("box %+v: recovery w = %g, want %g", bx, got, want)
		}
	}
	// Infinite bounds on a bilinear factor must be rejected, mirroring
	// relax.ErrBadInterval's finite-box requirement.
	bad := &prob.Problem{NumVars: 3, Bilin: []prob.Bilinear{{W: 2, X: 0, Y: 1}}}
	if _, _, err := prob.McCormick(bad); !errors.Is(err, prob.ErrBadProblem) {
		t.Fatalf("unbounded factor: err = %v, want ErrBadProblem", err)
	}
}

func TestRelaxIntegralityRecovery(t *testing.T) {
	p := &prob.Problem{
		NumVars: 3,
		Obj:     prob.Objective{Maximize: true, Lin: []float64{1, 1, 1}},
		Hi:      []float64{1, 2, 5},
		Integer: []int{0, 1},
	}
	q, rec, err := prob.RelaxIntegrality(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Integer) != 0 {
		t.Fatalf("relaxed problem keeps integrality marks %v", q.Integer)
	}
	if q.Classify() != prob.ClassLP {
		t.Fatalf("relaxed class = %v, want LP", q.Classify())
	}
	if len(p.Integer) != 2 {
		t.Fatal("pass mutated its input")
	}
	// Rounding clips into the original box: 2.7 rounds to 3, clipped to Hi=2;
	// the continuous coordinate is untouched.
	res := rec.Lift(&prob.Result{X: []float64{0.49, 2.7, 3.14}})
	want := []float64{0, 2, 3.14}
	for j, v := range want {
		if res.X[j] != v {
			t.Errorf("lifted X[%d] = %g, want %g", j, res.X[j], v)
		}
	}
}

// TestLiftRankRoundTrip drives the full Eq. 7→10 chain on a QCQP whose
// answer is known in closed form: min ½x² subject to x = 2. LiftRank states
// the RMP; Solve applies TraceSurrogate and ToSDP implicitly, runs the sdp
// backend, and the caller-held recovery lifts Y = [1 x; x x²] back to x.
func TestLiftRankRoundTrip(t *testing.T) {
	p := &prob.Problem{
		NumVars: 1,
		Obj:     prob.Objective{Quad: mustMat(t, [][]float64{{1}})},
		Lo:      []float64{math.Inf(-1)},
		Hi:      []float64{math.Inf(1)},
		Lin:     []prob.LinCon{{Coeffs: []float64{1}, Sense: prob.EQ, RHS: 2}},
	}
	// LiftRank rejects box bounds; free variables must drop them explicitly.
	lifted, rec, err := prob.LiftRank(&prob.Problem{
		NumVars: p.NumVars, Obj: p.Obj, Lin: p.Lin,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := lifted.Classify(); got != prob.ClassRMP {
		t.Fatalf("lifted class = %v, want RMP", got)
	}
	res, err := prob.Solve(lifted, prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "sdp" {
		t.Fatalf("backend = %q, want sdp", res.Backend)
	}
	wantTrail := []string{"trace-surrogate", "to-sdp", "backend:sdp"}
	if len(res.Trail) != len(wantTrail) {
		t.Fatalf("trail = %v, want %v", res.Trail, wantTrail)
	}
	for i := range wantTrail {
		if res.Trail[i] != wantTrail[i] {
			t.Fatalf("trail = %v, want %v", res.Trail, wantTrail)
		}
	}
	rec.Lift(res)
	if res.X == nil || res.XMat != nil {
		t.Fatalf("recovery did not return to the vector space: X=%v XMat=%v", res.X, res.XMat)
	}
	if math.Abs(res.X[0]-2) > 1e-4 {
		t.Errorf("recovered x = %g, want 2", res.X[0])
	}
	// The recovery re-evaluates the original QCQP objective ½x² = 2 at the
	// lifted point, replacing the surrogate trace value.
	if math.Abs(res.Objective-2) > 1e-3 {
		t.Errorf("recovered objective = %g, want 2", res.Objective)
	}
}

func TestLiftRankRejections(t *testing.T) {
	cases := []struct {
		name string
		p    *prob.Problem
	}{
		{"inequality row", &prob.Problem{NumVars: 1, Lin: []prob.LinCon{{Coeffs: []float64{1}, Sense: prob.LE, RHS: 1}}}},
		{"integrality", &prob.Problem{NumVars: 1, Integer: []int{0}}},
		{"bounds", &prob.Problem{NumVars: 1, Hi: []float64{1}}},
		{"bilinear", &prob.Problem{NumVars: 3, Bilin: []prob.Bilinear{{W: 2, X: 0, Y: 1}}}},
	}
	for _, c := range cases {
		if _, _, err := prob.LiftRank(c.p); !errors.Is(err, prob.ErrBadProblem) {
			t.Errorf("%s: err = %v, want ErrBadProblem", c.name, err)
		}
	}
}

func TestSurrogatePassPreconditions(t *testing.T) {
	lpProb := &prob.Problem{NumVars: 1, Obj: prob.Objective{Lin: []float64{1}}}
	if _, _, err := prob.TraceSurrogate(lpProb); !errors.Is(err, prob.ErrBadProblem) {
		t.Errorf("TraceSurrogate on LP: %v, want ErrBadProblem", err)
	}
	if _, _, err := prob.ToSDP(lpProb); !errors.Is(err, prob.ErrBadProblem) {
		t.Errorf("ToSDP on LP: %v, want ErrBadProblem", err)
	}
	rmp := &prob.Problem{Matrix: &prob.MatrixBlock{Dim: 2, Obj: prob.MatrixObjRank, PSD: true}}
	tmp, rec1, err := prob.TraceSurrogate(rmp)
	if err != nil {
		t.Fatal(err)
	}
	if tmp.Classify() != prob.ClassTMP || rec1.Pass != "trace-surrogate" {
		t.Fatalf("TraceSurrogate: class %v, pass %q", tmp.Classify(), rec1.Pass)
	}
	if rmp.Matrix.Obj != prob.MatrixObjRank {
		t.Fatal("TraceSurrogate mutated its input")
	}
	std, rec2, err := prob.ToSDP(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if std.Classify() != prob.ClassSDP || rec2.Pass != "to-sdp" {
		t.Fatalf("ToSDP: class %v, pass %q", std.Classify(), rec2.Pass)
	}
	// ToSDP installs C = I, the ⟨I, X⟩ = tr(X) identity of Eq. 10.
	want := mat.Identity(2)
	for i, v := range std.Matrix.C.Data {
		if v != want.Data[i] {
			t.Fatalf("ToSDP C = %v, want identity", std.Matrix.C.Data)
		}
	}
}

func TestLowerComposesTrail(t *testing.T) {
	rmp := &prob.Problem{Matrix: &prob.MatrixBlock{Dim: 2, Obj: prob.MatrixObjRank, PSD: true}}
	std, trail, err := prob.Lower(rmp, prob.TraceSurrogate, prob.ToSDP)
	if err != nil {
		t.Fatal(err)
	}
	if std.Classify() != prob.ClassSDP {
		t.Fatalf("lowered class = %v, want SDP", std.Classify())
	}
	names := trail.Passes()
	if len(names) != 2 || names[0] != "trace-surrogate" || names[1] != "to-sdp" {
		t.Fatalf("trail = %v", names)
	}
}

func TestSolveDispatchLP(t *testing.T) {
	// max x0 + 2 x1  s.t.  x0 + x1 <= 1,  0 <= x <= 1  →  x = (0, 1), obj 2.
	p := &prob.Problem{
		NumVars: 2,
		Obj:     prob.Objective{Maximize: true, Lin: []float64{1, 2}},
		Hi:      []float64{1, 1},
		Lin:     []prob.LinCon{{Coeffs: []float64{1, 1}, Sense: prob.LE, RHS: 1}},
	}
	res, err := prob.Solve(p, prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "lp" || res.LP == nil {
		t.Fatalf("backend = %q (LP=%v), want lp", res.Backend, res.LP)
	}
	if res.Status != guard.StatusConverged {
		t.Fatalf("status = %v, want Converged", res.Status)
	}
	// The Result reports the maximize-sense objective; the raw backend
	// solution keeps the negated minimize value.
	if math.Abs(res.Objective-2) > 1e-9 || math.Abs(res.LP.Objective+2) > 1e-9 {
		t.Fatalf("objective = %g (backend %g), want 2 (-2)", res.Objective, res.LP.Objective)
	}
	if len(res.Trail) != 1 || res.Trail[0] != "backend:lp" {
		t.Fatalf("trail = %v", res.Trail)
	}
}

func TestSolveDispatchMILP(t *testing.T) {
	// Knapsack: max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary → b+c = 20.
	p := &prob.Problem{
		NumVars: 3,
		Obj:     prob.Objective{Maximize: true, Lin: []float64{10, 13, 7}},
		Hi:      []float64{1, 1, 1},
		Integer: []int{0, 1, 2},
		Lin:     []prob.LinCon{{Coeffs: []float64{3, 4, 2}, Sense: prob.LE, RHS: 6}},
	}
	res, err := prob.Solve(p, prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "minlp" || res.MILP == nil {
		t.Fatalf("backend = %q, want minlp", res.Backend)
	}
	if res.Status != guard.StatusConverged || math.Abs(res.Objective-20) > 1e-9 {
		t.Fatalf("status %v objective %g, want Converged 20", res.Status, res.Objective)
	}
	want := []float64{0, 1, 1}
	for j, v := range want {
		if math.Abs(res.X[j]-v) > 1e-9 {
			t.Fatalf("X = %v, want %v", res.X, want)
		}
	}
}

func TestSolveDispatchQP(t *testing.T) {
	// min x² - 2x over [0, 3]: minimizer x = 1, value -1.
	p := &prob.Problem{
		NumVars: 1,
		Obj:     prob.Objective{Quad: mustMat(t, [][]float64{{2}}), Lin: []float64{-2}},
		Hi:      []float64{3},
	}
	res, err := prob.Solve(p, prob.Options{X0: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "qp" || res.QP == nil {
		t.Fatalf("backend = %q, want qp", res.Backend)
	}
	if res.Status != guard.StatusConverged {
		t.Fatalf("status = %v, want Converged", res.Status)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.Objective+1) > 1e-6 {
		t.Fatalf("x = %g obj = %g, want 1, -1", res.X[0], res.Objective)
	}
}

func TestSolveDispatchSDPChain(t *testing.T) {
	rs := mustMat(t, [][]float64{
		{2, 1, 1},
		{1, 2, 1},
		{1, 1, 2},
	})
	rmp, err := prob.NewDiagLowRankRMP(rs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prob.Solve(rmp, prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "sdp" || res.SDP == nil || res.XMat == nil {
		t.Fatalf("backend = %q XMat=%v, want sdp with matrix solution", res.Backend, res.XMat)
	}
	// The recovered Rc must match Rs off the diagonal (the Eq. 9 constraint).
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && math.Abs(res.XMat.At(i, j)-rs.At(i, j)) > 1e-4 {
				t.Fatalf("Rc[%d,%d] = %g, want %g", i, j, res.XMat.At(i, j), rs.At(i, j))
			}
		}
	}
}

// TestSolveMINLPNeedsExplicitStep pins the deliberate hole in the registry:
// a problem that is both integral and nonlinear has no backend, because the
// Eq. 7 relaxation (or a rank lift) is a modeling decision the caller owns.
func TestSolveMINLPNeedsExplicitStep(t *testing.T) {
	p := &prob.Problem{
		NumVars: 1,
		Obj:     prob.Objective{Quad: mustMat(t, [][]float64{{1}})},
		Integer: []int{0},
		Hi:      []float64{1},
	}
	if _, err := prob.Solve(p, prob.Options{}); !errors.Is(err, prob.ErrBadProblem) {
		t.Fatalf("MINLP dispatch: err = %v, want ErrBadProblem", err)
	}
	// RelaxIntegrality is the documented way out.
	q, _, err := prob.RelaxIntegrality(p)
	if err != nil {
		t.Fatal(err)
	}
	if q.Classify() != prob.ClassQCQP {
		t.Fatalf("relaxed class = %v, want QCQP", q.Classify())
	}
}

// TestSolveBilinearViaMcCormick checks the implicit McCormick arm of the
// registry: a bilinear-equality problem dispatches to lp through the
// envelope, and the lift restores w = x·y exactly.
func TestSolveBilinearViaMcCormick(t *testing.T) {
	// max w  s.t.  w = x·y,  x,y ∈ [0,1]: the envelope's LP optimum sits at
	// the corner x = y = 1 where the relaxation is tight (w = 1).
	p := &prob.Problem{
		NumVars: 3,
		Obj:     prob.Objective{Maximize: true, Lin: []float64{0, 0, 1}},
		Hi:      []float64{1, 1, 1},
		Bilin:   []prob.Bilinear{{W: 2, X: 0, Y: 1}},
	}
	res, err := prob.Solve(p, prob.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Backend != "lp" {
		t.Fatalf("backend = %q, want lp", res.Backend)
	}
	if len(res.Trail) != 2 || res.Trail[0] != "mccormick" || res.Trail[1] != "backend:lp" {
		t.Fatalf("trail = %v", res.Trail)
	}
	if got, want := res.X[2], res.X[0]*res.X[1]; got != want {
		t.Fatalf("lifted w = %g, want x·y = %g", got, want)
	}
	if math.Abs(res.Objective-1) > 1e-9 {
		t.Fatalf("objective = %g, want 1", res.Objective)
	}
}
