// Package prob is the single typed optimization IR of the repository and
// the home of the paper's Eq. 7–10 lowering chain. Every optimization layer
// in the stack — the 5G RRA column MILPs (internal/qos), the trace-min
// decomposition (internal/relax), the triangle-relaxation verifier LPs
// (internal/verify), and the layer-1 inertia QP (internal/core) — states
// its problem as a prob.Problem and obtains solver inputs by *lowering*:
//
//	nonconvex MINLP ──RelaxIntegrality──▶ QCQP      (Eq. 7)
//	QCQP            ──LiftRank─────────▶ RMP        (Eq. 8, min rank)
//	RMP             ──TraceSurrogate───▶ TMP        (Eq. 9, min trace)
//	TMP             ──ToSDP────────────▶ SDP        (Eq. 10, standard form)
//	bilinear blocks ──McCormick────────▶ linear envelopes
//
// Each pass is pure: it returns a new Problem plus a Recovery that maps the
// lowered solution back up the chain, so a pipeline of passes composes into
// a single round trip from the original variable space to the solved one
// and back. Solve dispatches a Problem to the lp/qp/sdp/minlp backends by
// inspecting its constraint blocks, threads one guard.Budget through
// whichever backend runs, and reports a unified Result carrying the typed
// guard.Status and the per-pass provenance trail.
//
// A structural-fingerprint cache (see Cache) lets repeated solves of
// same-shape problems — the qos.SolveRobust ladder sharing one column model
// across its exact and relaxed rungs, batch RRA instances, probe loops —
// reuse lowered/compiled forms and warm-start from prior solutions.
package prob

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ErrBadProblem is returned for structurally invalid problems.
var ErrBadProblem = errors.New("prob: invalid problem")

// Sense is the direction of a linear constraint row.
type Sense int

// Constraint senses. The values mirror internal/lp so compilation is a
// direct mapping.
const (
	LE Sense = iota + 1
	EQ
	GE
)

// String implements fmt.Stringer.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case EQ:
		return "="
	case GE:
		return ">="
	default:
		return fmt.Sprintf("sense(%d)", int(s))
	}
}

// LinCon is one linear row a·x (sense) b. Coeffs may be shorter than
// NumVars; missing entries are zero.
type LinCon struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// QuadCon is one quadratic constraint ½xᵀPx + qᵀx + r (sense) 0. P is
// treated as symmetric; nil P degrades to an affine row. Only LE and EQ
// senses are meaningful (GE of a convex quadratic is nonconvex).
type QuadCon struct {
	P     *mat.Matrix
	Q     []float64
	R     float64
	Sense Sense
}

// Bilinear marks the nonconvex equality x[W] = x[X]·x[Y]. The McCormick
// pass replaces it with its linear envelope over the bounds of X and Y.
type Bilinear struct {
	W, X, Y int
}

// Objective is min/max of ½xᵀQuad·x + Lin·x + Const over the vector
// variables. Maximize is normalized away by compilation (coefficients are
// negated), so backends always minimize.
type Objective struct {
	Maximize bool
	Lin      []float64
	Quad     *mat.Matrix
	Const    float64
}

// MatrixObj names the objective over a matrix variable block.
type MatrixObj int

// Matrix-block objectives: the three rungs of the paper's Eq. 8–10 chain.
const (
	// MatrixObjRank: minimize rank(X) — the nonconvex RMP (Eq. 8).
	MatrixObjRank MatrixObj = iota + 1
	// MatrixObjTrace: minimize tr(X) — the TMP surrogate (Eq. 9).
	MatrixObjTrace
	// MatrixObjInner: minimize ⟨C, X⟩ — standard-form SDP (Eq. 10).
	MatrixObjInner
)

// String implements fmt.Stringer.
func (o MatrixObj) String() string {
	switch o {
	case MatrixObjRank:
		return "rank"
	case MatrixObjTrace:
		return "trace"
	case MatrixObjInner:
		return "inner"
	default:
		return fmt.Sprintf("matrixobj(%d)", int(o))
	}
}

// MatrixBlock is a problem over one symmetric Dim×Dim matrix variable X:
//
//	minimize    Obj(X)                  (rank, trace, or ⟨C, X⟩)
//	subject to  ⟨Aᵢ, X⟩ = Bᵢ            i = 1..m
//	            X ⪰ 0                   (when PSD)
//
// Equality-only constraints mirror the sdp backend's standard form; the
// Eq. 8–10 chain needs nothing more.
type MatrixBlock struct {
	Dim int
	Obj MatrixObj
	// C is the inner-product objective matrix; nil unless Obj is
	// MatrixObjInner.
	C   *mat.Matrix
	A   []*mat.Matrix
	B   []float64
	PSD bool
}

// Problem is the typed IR. A Problem holds either a vector part (NumVars
// with bounds, integrality marks, and linear/quadratic/bilinear blocks) or
// a matrix block — never both; the LiftRank pass is the bridge between the
// two worlds.
type Problem struct {
	// NumVars is the vector-variable count.
	NumVars int
	Obj     Objective
	// Lo/Hi are optional bounds, ±Inf allowed; nil means 0 and +Inf for
	// every variable (the lp package's convention, preserved so compiled
	// problems are element-identical to their hand-built ancestors).
	Lo, Hi []float64
	// Integer lists variable indices required integral.
	Integer []int
	Lin     []LinCon
	Quad    []QuadCon
	// Bilin lists nonconvex bilinear equalities awaiting the McCormick pass.
	Bilin []Bilinear
	// Matrix, when non-nil, makes this a matrix-variable problem.
	Matrix *MatrixBlock
}

// Class names the problem class the IR currently encodes — the rungs of
// the paper's formulation chain.
type Class int

// Problem classes, loosest (most exact) to tightest (most relaxed).
const (
	// ClassMINLP: integrality plus nonlinearity (quadratic blocks or
	// unlowered bilinear equalities).
	ClassMINLP Class = iota + 1
	// ClassMILP: integrality over purely linear blocks.
	ClassMILP
	// ClassQCQP: continuous with quadratic objective or constraints (Eq. 7).
	ClassQCQP
	// ClassLP: continuous and purely linear.
	ClassLP
	// ClassRMP: matrix rank minimization (Eq. 8).
	ClassRMP
	// ClassTMP: matrix trace minimization (Eq. 9).
	ClassTMP
	// ClassSDP: standard-form semidefinite program (Eq. 10).
	ClassSDP
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassMINLP:
		return "MINLP"
	case ClassMILP:
		return "MILP"
	case ClassQCQP:
		return "QCQP"
	case ClassLP:
		return "LP"
	case ClassRMP:
		return "RMP"
	case ClassTMP:
		return "TMP"
	case ClassSDP:
		return "SDP"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classify reports the problem class the IR currently encodes.
func (p *Problem) Classify() Class {
	if p.Matrix != nil {
		switch p.Matrix.Obj {
		case MatrixObjRank:
			return ClassRMP
		case MatrixObjTrace:
			return ClassTMP
		default:
			return ClassSDP
		}
	}
	nonlinear := p.Obj.Quad != nil || len(p.Quad) > 0 || len(p.Bilin) > 0
	switch {
	case len(p.Integer) > 0 && nonlinear:
		return ClassMINLP
	case len(p.Integer) > 0:
		return ClassMILP
	case nonlinear:
		return ClassQCQP
	default:
		return ClassLP
	}
}

// Validate checks structural consistency: index ranges, bound lengths, and
// the vector/matrix exclusivity rule.
func (p *Problem) Validate() error {
	if p.Matrix != nil {
		if p.NumVars != 0 || len(p.Lin) != 0 || len(p.Quad) != 0 || len(p.Bilin) != 0 || len(p.Integer) != 0 {
			return fmt.Errorf("%w: matrix block must not coexist with vector blocks", ErrBadProblem)
		}
		m := p.Matrix
		if m.Dim <= 0 {
			return fmt.Errorf("%w: matrix dim %d", ErrBadProblem, m.Dim)
		}
		if len(m.A) != len(m.B) {
			return fmt.Errorf("%w: %d constraint matrices, %d rhs", ErrBadProblem, len(m.A), len(m.B))
		}
		for i, a := range m.A {
			if a == nil || a.Rows != m.Dim || a.Cols != m.Dim {
				return fmt.Errorf("%w: matrix constraint %d is not %dx%d", ErrBadProblem, i, m.Dim, m.Dim)
			}
		}
		if m.Obj == MatrixObjInner && (m.C == nil || m.C.Rows != m.Dim || m.C.Cols != m.Dim) {
			return fmt.Errorf("%w: inner objective needs a %dx%d C", ErrBadProblem, m.Dim, m.Dim)
		}
		if m.Obj != MatrixObjRank && m.Obj != MatrixObjTrace && m.Obj != MatrixObjInner {
			return fmt.Errorf("%w: matrix objective %d", ErrBadProblem, int(m.Obj))
		}
		return nil
	}
	n := p.NumVars
	if n < 0 {
		return fmt.Errorf("%w: NumVars=%d", ErrBadProblem, n)
	}
	if len(p.Obj.Lin) > n {
		return fmt.Errorf("%w: objective has %d coefficients for %d vars", ErrBadProblem, len(p.Obj.Lin), n)
	}
	if p.Obj.Quad != nil && (p.Obj.Quad.Rows != n || p.Obj.Quad.Cols != n) {
		return fmt.Errorf("%w: quadratic objective is %dx%d for %d vars", ErrBadProblem, p.Obj.Quad.Rows, p.Obj.Quad.Cols, n)
	}
	if p.Lo != nil && len(p.Lo) != n {
		return fmt.Errorf("%w: Lo has %d entries for %d vars", ErrBadProblem, len(p.Lo), n)
	}
	if p.Hi != nil && len(p.Hi) != n {
		return fmt.Errorf("%w: Hi has %d entries for %d vars", ErrBadProblem, len(p.Hi), n)
	}
	for i, c := range p.Lin {
		if len(c.Coeffs) > n {
			return fmt.Errorf("%w: linear constraint %d has %d coefficients for %d vars", ErrBadProblem, i, len(c.Coeffs), n)
		}
		if c.Sense != LE && c.Sense != EQ && c.Sense != GE {
			return fmt.Errorf("%w: linear constraint %d has sense %d", ErrBadProblem, i, int(c.Sense))
		}
	}
	for i, c := range p.Quad {
		if len(c.Q) > n {
			return fmt.Errorf("%w: quadratic constraint %d has %d coefficients for %d vars", ErrBadProblem, i, len(c.Q), n)
		}
		if c.P != nil && (c.P.Rows != n || c.P.Cols != n) {
			return fmt.Errorf("%w: quadratic constraint %d matrix is %dx%d for %d vars", ErrBadProblem, i, c.P.Rows, c.P.Cols, n)
		}
		if c.Sense != 0 && c.Sense != LE && c.Sense != EQ {
			return fmt.Errorf("%w: quadratic constraint %d has sense %v", ErrBadProblem, i, c.Sense)
		}
	}
	for _, j := range p.Integer {
		if j < 0 || j >= n {
			return fmt.Errorf("%w: integer index %d out of range [0,%d)", ErrBadProblem, j, n)
		}
	}
	for i, b := range p.Bilin {
		for _, j := range []int{b.W, b.X, b.Y} {
			if j < 0 || j >= n {
				return fmt.Errorf("%w: bilinear term %d references variable %d of %d", ErrBadProblem, i, j, n)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the vector blocks and a shallow copy of the
// matrix block's matrices (passes never mutate constraint matrices).
func (p *Problem) Clone() *Problem {
	q := &Problem{
		NumVars: p.NumVars,
		Obj: Objective{
			Maximize: p.Obj.Maximize,
			Lin:      cloneF(p.Obj.Lin),
			Quad:     p.Obj.Quad,
			Const:    p.Obj.Const,
		},
		Lo:      cloneF(p.Lo),
		Hi:      cloneF(p.Hi),
		Integer: append([]int(nil), p.Integer...),
		Lin:     append([]LinCon(nil), p.Lin...),
		Quad:    append([]QuadCon(nil), p.Quad...),
		Bilin:   append([]Bilinear(nil), p.Bilin...),
	}
	if p.Matrix != nil {
		m := *p.Matrix
		m.A = append([]*mat.Matrix(nil), p.Matrix.A...)
		m.B = cloneF(p.Matrix.B)
		q.Matrix = &m
	}
	return q
}

// Bound returns the effective bounds of variable j under the lp package's
// nil conventions (nil Lo ⇒ 0, nil Hi ⇒ +Inf).
func (p *Problem) Bound(j int) (lo, hi float64) {
	lo, hi = 0, math.Inf(1)
	if p.Lo != nil {
		lo = p.Lo[j]
	}
	if p.Hi != nil {
		hi = p.Hi[j]
	}
	return lo, hi
}

func cloneF(xs []float64) []float64 {
	if xs == nil {
		return nil
	}
	return append([]float64(nil), xs...)
}
