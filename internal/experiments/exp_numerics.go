package experiments

import (
	"math"
	"math/cmplx"

	"repro/internal/fft"
	"repro/internal/numerics"
	"repro/internal/rng"
	"repro/internal/stft"
)

// F3NumericalAudit regenerates the paper's Fig. 3 — "sample of numerical
// issues found in various ML libraries/toolkits" — by probing this
// repository's own FFT/STFT/softmax kernels for each issue class the paper
// catalogs: signature/convention mismatch, window-length-dependent phase
// skew, non-circular frame truncation, low-magnitude Gabor-phase
// unreliability, overflow/underflow, and unfused log-softmax instability.
// Each row reports whether the issue is detectable in the "naive" path and
// whether the repository's corrected path fixes it.
func F3NumericalAudit(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "F3",
		Title:  "numerical issues audit (FFT/IFFT/RFFT/IRFFT/STFT/ISTFT + fused ops)",
		Header: []string{"issue", "probe", "naive/foreign", "corrected", "magnitude"},
	}
	r := rng.New(seed)

	// 1. FFT correctness vs the O(n²) oracle (catches silent zero-padding
	// or length restrictions — several toolkit bugs the paper cites).
	n := 240 // non power of two
	if quick {
		n = 60
	}
	sig := make([]complex128, n)
	for i := range sig {
		sig[i] = complex(r.Norm(), r.Norm())
	}
	fastErr := fft.MaxAbsError(fft.FFT(sig), fft.NaiveDFT(sig))
	t.AddRow("arbitrary-length FFT", "Bluestein vs naive DFT, n="+fi(n),
		"n/a", fbool(fastErr < 1e-7), fsci(fastErr))

	// 2. RFFT/IRFFT round trip.
	real1 := make([]float64, n)
	for i := range real1 {
		real1[i] = r.Norm()
	}
	back, err := fft.IRFFT(fft.RFFT(real1), n)
	if err != nil {
		return nil, err
	}
	var rtErr float64
	for i := range real1 {
		if d := math.Abs(real1[i] - back[i]); d > rtErr {
			rtErr = d
		}
	}
	t.AddRow("RFFT/IRFFT round trip", "n="+fi(n), "n/a", fbool(rtErr < 1e-9), fsci(rtErr))

	// 3. STFT convention mismatch: interpreting time-invariant frames as
	// simplified frames corrupts the phase unless the skew matrix is
	// applied (the paper's §IV-B TensorFlow/PyTorch issue).
	const (
		m, lg, hop, sl = 32, 32, 8, 256
	)
	x := make([]float64, sl)
	for i := range x {
		x[i] = math.Cos(2*math.Pi*5*float64(i)/m) + 0.1*r.Norm()
	}
	ti, err := stft.Transform(x, stft.Config{FFTSize: m, Hop: hop, WinLen: lg, Window: stft.WindowHann, Convention: stft.ConventionTimeInvariant})
	if err != nil {
		return nil, err
	}
	x2 := make([]float64, sl)
	c := lg / 2
	for i := range x2 {
		x2[i] = x[((i-c)%sl+sl)%sl]
	}
	simp, err := stft.Transform(x2, stft.Config{FFTSize: m, Hop: hop, WinLen: lg, Window: stft.WindowHann, Convention: stft.ConventionSimplified})
	if err != nil {
		return nil, err
	}
	skewed, err := stft.ApplySkew(simp, stft.PhaseSkewFactors(m, lg))
	if err != nil {
		return nil, err
	}
	nComp := skewed.NumFrames()
	if ti.NumFrames() < nComp {
		nComp = ti.NumFrames()
	}
	var rawErr, fixedErr float64
	for fr := 1; fr < nComp-1; fr++ {
		for bin := 0; bin < m; bin++ {
			if d := cmplx.Abs(ti.Coef[fr][bin] - simp.Coef[fr][bin]); d > rawErr {
				rawErr = d
			}
			if d := cmplx.Abs(ti.Coef[fr][bin] - skewed.Coef[fr][bin]); d > fixedErr {
				fixedErr = d
			}
		}
	}
	t.AddRow("STFT convention phase skew", "Eq.5 vs Eq.6 frames",
		fbool(rawErr > 1e-3), fbool(fixedErr < 1e-9),
		fsci(rawErr)+" -> "+fsci(fixedErr))

	// 4. Non-circular frame truncation: the simplified convention drops
	// tail samples; the time-invariant convention covers the whole signal.
	t.AddRow("non-circular frame loss", "frames over L="+fi(sl),
		fi(simp.NumFrames()), fi(ti.NumFrames()),
		fi(ti.NumFrames()-simp.NumFrames())+" frames lost")

	// 5. Gabor phase derivative near machine precision: on a noiseless
	// tone, bins far from the tone hold only rounding dust whose phase is
	// "almost random" (the LTFAT warning the paper quotes); the
	// reliability mask must flag them.
	clean := make([]float64, sl)
	for i := range clean {
		clean[i] = math.Cos(2 * math.Pi * 5 * float64(i) / m)
	}
	cleanSTFT, err := stft.Transform(clean, stft.Config{FFTSize: m, Hop: hop, WinLen: lg, Window: stft.WindowHann, Convention: stft.ConventionSimplified})
	if err != nil {
		return nil, err
	}
	pd := stft.GabPhaseDeriv(cleanSTFT, 1e-6)
	unreliable := 0
	totalBins := 0
	for fr := range pd.Reliable {
		for _, ok := range pd.Reliable[fr] {
			totalBins++
			if !ok {
				unreliable++
			}
		}
	}
	t.AddRow("Gabor phase near eps", "reliability mask",
		"phase ~random", "flagged", fpct(float64(unreliable)/float64(totalBins))+" bins flagged")

	// 6. Naive softmax overflow.
	big := []float64{1000, 999, 998}
	naive := numerics.NaiveSoftmax(nil, big)
	naiveNaN := false
	for _, v := range naive {
		if math.IsNaN(v) {
			naiveNaN = true
		}
	}
	stable := numerics.Softmax(nil, big)
	stableOK := true
	var sum float64
	for _, v := range stable {
		if math.IsNaN(v) {
			stableOK = false
		}
		sum += v
	}
	t.AddRow("softmax overflow @1000", "exp(x) vs exp(x-max)",
		fbool(naiveNaN)+" (NaN)", fbool(stableOK && math.Abs(sum-1) < 1e-9), "logits ~1e3")

	// 7. Unfused log-softmax -Inf (the paper's §V example).
	lsNaive := numerics.NaiveLogSoftmax(nil, []float64{0, 800})
	lsFused := numerics.LogSoftmax(nil, []float64{0, 800})
	t.AddRow("unfused log(softmax)", "logits {0, 800}",
		fbool(math.IsInf(lsNaive[0], -1))+" (-Inf)",
		fbool(!math.IsInf(lsFused[0], -1)), f(lsFused[0]))

	// 8. Overflow/underflow probes.
	t.AddRow("exp overflow", "exp(710)", fbool(numerics.OverflowProbe(710)), "guarded by LSE", "+Inf")
	t.AddRow("exp underflow", "exp(-746)", fbool(numerics.UnderflowProbe(-746)), "guarded by LSE", "0")

	// 9. Naive hypot overflow.
	t.AddRow("hypot overflow", "sqrt(x²+y²) @1e200",
		fbool(math.IsInf(numerics.NaiveHypot(1e200, 1e200), 1)),
		fbool(!math.IsInf(numerics.Hypot(1e200, 1e200), 1)), "1e200")

	t.AddNote("rows mirror the issue classes of the paper's Fig. 3, reproduced against this repository's own kernels")
	return t, nil
}

// T8StableOps reproduces the paper's §V fused-operation claim with
// quantitative failure magnitudes: the separate softmax→log pipeline loses
// everything past ~log(eps) separation, the fused form is exact.
func T8StableOps(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "T8",
		Title:  "fused vs unfused numerically-delicate pipelines",
		Header: []string{"logit gap", "naive log-softmax[min]", "fused log-softmax[min]", "naive finite"},
	}
	gaps := []float64{10, 50, 200, 500, 800}
	if quick {
		gaps = []float64{10, 800}
	}
	for _, g := range gaps {
		naive := numerics.NaiveLogSoftmax(nil, []float64{0, g})
		fused := numerics.LogSoftmax(nil, []float64{0, g})
		t.AddRow(f(g), f(naive[0]), f(fused[0]), fbool(!math.IsInf(naive[0], -1)))
	}
	// Kahan vs naive summation under cancellation.
	xs := make([]float64, 0, 3000)
	for i := 0; i < 1000; i++ {
		xs = append(xs, 1, 1e16, -1e16)
	}
	t.AddNote("cancellation sum (true 1000): naive=%v kahan=%v",
		numerics.Sum(xs), numerics.KahanSum(xs))
	return t, nil
}
