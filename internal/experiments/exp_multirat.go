package experiments

import (
	"errors"
	"time"

	"repro/internal/minlp"
	"repro/internal/qos"
)

// A3MultiRAT exercises the paper's second motivating MINLP class:
// "Multi-Radio Access Technology (RAT) handling for multi-connectivity
// (each with its own QoS requirements)." Users of the three service
// classes are assigned to LTE / 5G-sub6 / mmWave with slot limits;
// greedy and exact BnB are compared on throughput and QoS satisfaction.
func A3MultiRAT(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "A3",
		Title:  "multi-RAT assignment with per-class QoS",
		Header: []string{"solver", "instance", "throughput (Mb/s)", "all QoS", "slots ok", "time", "work"},
	}
	type inst struct {
		name    string
		e, u, m int
	}
	instances := []inst{
		{"4 users", 2, 1, 1},
		{"8 users", 3, 2, 3},
	}
	if quick {
		instances = instances[:1]
	}
	for _, in := range instances {
		p, err := qos.GenerateMultiRAT(in.e, in.u, in.m, seed)
		if err != nil {
			return nil, err
		}
		st := time.Now()
		gAssign, err := p.SolveAssignGreedy()
		if err != nil {
			return nil, err
		}
		gDur := time.Since(st)
		gRep, err := p.EvaluateAssign(gAssign)
		if err != nil {
			return nil, err
		}
		t.AddRow("greedy", in.name, f(gRep.TotalRateBps/1e6), fbool(gRep.AllQoSMet),
			fbool(gRep.SlotsOK), gDur.Round(time.Microsecond).String(), "-")

		st = time.Now()
		eAssign, res, err := p.SolveAssignExact(minlp.Options{MaxNodes: 100000})
		if err != nil && !errors.Is(err, minlp.ErrBudget) {
			return nil, err
		}
		eDur := time.Since(st)
		if eAssign == nil {
			t.AddRow("exact BnB", in.name, "-", res.Status.String(), "-",
				eDur.Round(time.Microsecond).String(), fi(res.Nodes)+" nodes")
			continue
		}
		eRep, err := p.EvaluateAssign(eAssign)
		if err != nil {
			return nil, err
		}
		t.AddRow("exact BnB", in.name, f(eRep.TotalRateBps/1e6), fbool(eRep.AllQoSMet),
			fbool(eRep.SlotsOK), eDur.Round(time.Microsecond).String(), fi(res.Nodes)+" nodes")

		// Multi-connectivity: each user may aggregate two RATs (the
		// paper's "multi-RAT handling for multi-connectivity").
		p.MaxConnectivity = 2
		st = time.Now()
		mAssign, mRes, err := p.SolveMultiExact(minlp.Options{MaxNodes: 100000})
		if err != nil && !errors.Is(err, minlp.ErrBudget) {
			return nil, err
		}
		mDur := time.Since(st)
		p.MaxConnectivity = 0
		if mAssign != nil {
			p.MaxConnectivity = 2
			mRep, err := p.EvaluateMulti(mAssign)
			p.MaxConnectivity = 0
			if err != nil {
				return nil, err
			}
			t.AddRow("exact BnB, 2-RAT aggregation", in.name, f(mRep.TotalRateBps/1e6),
				fbool(mRep.AllQoSMet), fbool(mRep.SlotsOK),
				mDur.Round(time.Microsecond).String(), fi(mRes.Nodes)+" nodes")
		}
	}
	t.AddNote("mmWave has 2 slots and partial coverage; the exact solver routes them to the users that unlock the most rate without breaking anyone's QoS")
	return t, nil
}
