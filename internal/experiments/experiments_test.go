package experiments

import (
	"strings"
	"testing"
)

// TestQuickRunsAllExperiments executes every registered experiment in
// quick mode and sanity-checks the produced tables. The heavyweight F1
// stack run is covered separately.
func TestQuickRunsAllExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	for _, id := range Order() {
		if id == "f1" {
			continue // exercised by TestF1Quick below (slow)
		}
		id := id
		t.Run(id, func(t *testing.T) {
			table, err := Registry()[id](1, true)
			if err != nil {
				t.Fatal(err)
			}
			if table.ID == "" || table.Title == "" {
				t.Fatal("table missing identity")
			}
			if len(table.Header) == 0 || len(table.Rows) == 0 {
				t.Fatal("table empty")
			}
			for ri, row := range table.Rows {
				if len(row) > len(table.Header) {
					t.Fatalf("row %d has %d cells for %d headers", ri, len(row), len(table.Header))
				}
			}
		})
	}
}

func TestF1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("stack run skipped in -short mode")
	}
	table, err := F1RCRStack(1, true)
	if err != nil {
		t.Fatal(err)
	}
	var rendered strings.Builder
	table.Fprint(&rendered)
	out := rendered.String()
	for _, want := range []string{"numeric kernel", "PSO tuner", "verification"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered F1 table missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryCoversOrder(t *testing.T) {
	reg := Registry()
	for _, id := range Order() {
		if _, ok := reg[id]; !ok {
			t.Fatalf("experiment %s in Order() but not in Registry()", id)
		}
	}
	if len(reg) != len(Order()) {
		t.Fatalf("registry has %d entries, order has %d", len(reg), len(Order()))
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		ID:     "X",
		Title:  "demo",
		Header: []string{"a", "b"},
	}
	table.AddRow("1", "2")
	table.AddNote("hello %d", 42)
	var b strings.Builder
	table.Fprint(&b)
	out := b.String()
	for _, want := range []string{"X", "demo", "a", "1", "hello 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if f(1.23456) != "1.235" {
		t.Fatalf("f = %q", f(1.23456))
	}
	if fi(7) != "7" {
		t.Fatal("fi wrong")
	}
	if fpct(0.5) != "50.0%" {
		t.Fatalf("fpct = %q", fpct(0.5))
	}
	if fbool(true) != "yes" || fbool(false) != "no" {
		t.Fatal("fbool wrong")
	}
	if !strings.Contains(fsci(12345.0), "e+") {
		t.Fatalf("fsci = %q", fsci(12345.0))
	}
}
