package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gan"
	"repro/internal/nn"
	"repro/internal/verify"
	"repro/internal/yolo"
)

// F1RCRStack regenerates the paper's Fig. 1: one full run of the RCR
// architectural stack, reporting what each layer produced — the convex-fit
// adaptive inertia (layer 1), the PSO-tuned MSY3I hyperparameters
// (layer 2), and the trained network's accuracy, relaxation tightness, and
// verification verdicts (layer 3).
func F1RCRStack(seed uint64, quick bool) (*Table, error) {
	cfg := core.StackConfig{Seed: seed}
	if quick {
		cfg.Swarm = 3
		cfg.PSOIters = 2
		cfg.TuneTrainSteps = 10
		cfg.FinalTrainSteps = 40
	}
	rep, err := core.RunStack(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "F1",
		Title:  "RCR architectural stack (layer-by-layer outputs)",
		Header: []string{"stack layer", "component", "output"},
	}
	t.AddRow("1 numeric kernel", "adaptive inertia QP",
		fmt.Sprintf("base=%.3f boost=%.3f cap=%.2f (rms fit %.3g)",
			rep.Inertia.Schedule.Base, rep.Inertia.Schedule.Boost,
			rep.Inertia.Schedule.Max, rep.Inertia.Residual))
	t.AddRow("2 PSO tuner", "MSY3I hyperparameters",
		fmt.Sprintf("width=%d stages=%d squeeze=%.3f (score %.4f, %d evals)",
			rep.BestSpec.Width, rep.BestSpec.Stages, rep.BestSpec.SqueezeRatio,
			rep.TuneScore, rep.PSOEvals))
	t.AddRow("3 MSY3I", "parameters", fi(rep.NumParams))
	t.AddRow("3 MSY3I", "accuracy (standard vs adversarial training)",
		fpct(rep.StandardAccuracy)+" vs "+fpct(rep.FinalAccuracy))
	t.AddRow("3 relaxation", "mean pre-activation width (standard -> adversarial)",
		f(rep.MeanWidthStandard)+" -> "+f(rep.MeanWidthAdversarial))
	for _, d := range rep.LayerDeltas {
		t.AddRow("3 relaxation", fmt.Sprintf("layer %d width", d.Layer),
			f(d.WidthStandard)+" -> "+f(d.WidthAdversarial))
	}
	t.AddRow("3 verification", "triangle (relaxed) verdict", rep.TriangleVerdict.String())
	t.AddRow("3 verification", "exact (BnB) verdict", rep.ExactVerdict.String())
	t.AddRow("3 verification", "certified margin bound", f(rep.CertifiedBound))
	return t, nil
}

// F2DualParadigm regenerates the paper's Fig. 2 experiment: two GAN
// "paradigms" (a stable selective-batchnorm configuration standing in for
// the PyTorch v0.4.1 MSY3I #1, and a less-stable all-batchnorm
// configuration standing in for the v1.7.0 MSY3I #2), each run with and
// without the third "forward stable" generator (DCGAN #3) whose role is to
// mitigate mode collapse. Reported: mode coverage, sample quality,
// training oscillation, and forward stability.
func F2DualParadigm(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:    "F2",
		Title: "dual MSY3I paradigms + DCGAN #3 mixture (mode-collapse mitigation)",
		Header: []string{"paradigm", "generators", "modes covered", "HQ samples",
			"D-loss oscillation", "fwd amplification"},
	}
	steps := 800
	samples := 600
	if quick {
		steps = 150
		samples = 200
	}
	data, err := gan.NewRingMixture(8, 2, 0.1, seed)
	if err != nil {
		return nil, err
	}
	type cfg struct {
		name      string
		placement gan.Placement
		gens      int
	}
	cfgs := []cfg{
		{"#1 stable (selective BN)", gan.PlacementSelective, 1},
		{"#1 stable + DCGAN #3", gan.PlacementSelective, 2},
		{"#2 fast (all-layer BN)", gan.PlacementAll, 1},
		{"#2 fast + DCGAN #3", gan.PlacementAll, 2},
	}
	if quick {
		cfgs = cfgs[:2]
	}
	for _, c := range cfgs {
		g, err := gan.New(gan.Config{
			Seed:          seed,
			Placement:     c.placement,
			NumGenerators: c.gens,
			BatchSize:     32,
		})
		if err != nil {
			return nil, err
		}
		trace, err := gan.Train(g, data, steps)
		if err != nil {
			return nil, err
		}
		s, err := g.Sample(samples)
		if err != nil {
			return nil, err
		}
		rep, err := data.ModeCoverage(s, 0.5, 3)
		if err != nil {
			return nil, err
		}
		amp, err := g.ForwardStability(16, 1e-3)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, fi(c.gens), fi(rep.ModesCovered)+"/8",
			fpct(rep.HighQualityFrac), f(trace.Oscillation(steps/4)), f(amp))
	}
	t.AddNote("the extra generator (DCGAN #3) targets mode collapse: compare modes-covered with 1 vs 2 generators")
	return t, nil
}

// T6BatchnormPlacement reproduces the §II-B-2 claim in isolation:
// batchnorm on every layer oscillates/destabilizes GAN training relative
// to selective placement (generator output + discriminator input only).
func T6BatchnormPlacement(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "T6",
		Title:  "batchnorm placement vs GAN training stability",
		Header: []string{"placement", "seeds", "D-loss osc", "G-loss osc", "mean HQ samples", "mean modes"},
	}
	steps := 600
	seeds := 3
	if quick {
		steps = 120
		seeds = 1
	}
	for _, placement := range []gan.Placement{gan.PlacementNone, gan.PlacementSelective, gan.PlacementAll} {
		var oscSum, gOscSum, hqSum, modeSum float64
		for k := 0; k < seeds; k++ {
			data, err := gan.NewRingMixture(8, 2, 0.1, seed+uint64(k))
			if err != nil {
				return nil, err
			}
			g, err := gan.New(gan.Config{Seed: seed + uint64(k), Placement: placement, BatchSize: 32})
			if err != nil {
				return nil, err
			}
			trace, err := gan.Train(g, data, steps)
			if err != nil {
				return nil, err
			}
			s, err := g.Sample(400)
			if err != nil {
				return nil, err
			}
			rep, err := data.ModeCoverage(s, 0.5, 3)
			if err != nil {
				return nil, err
			}
			oscSum += trace.Oscillation(steps / 4)
			gOscSum += oscillationOf(trace.GLoss, steps/4)
			hqSum += rep.HighQualityFrac
			modeSum += float64(rep.ModesCovered)
		}
		fs := float64(seeds)
		t.AddRow(placement.String(), fi(seeds), f(oscSum/fs), f(gOscSum/fs), fpct(hqSum/fs), f(modeSum/fs))
	}
	t.AddNote("paper claim: all-layer batchnorm causes 'oscillation and instability'; selective placement (gen output + disc input) is the proven recipe")
	t.AddNote("instability under all-layer batchnorm manifests as degenerate training (flat losses, collapsed modes) — compare HQ/modes columns")
	return t, nil
}

// T7BoundTightening reproduces the RCR bound-tightening claim: convex-
// relaxation adversarial training tightens the per-layer relaxations
// relative to standard training at the same budget.
func T7BoundTightening(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "T7",
		Title:  "layer-wise relaxation tightness: standard vs adversarial training",
		Header: []string{"training", "mean width", "triangle area gap", "unstable ReLUs", "accuracy"},
	}
	steps := 200
	if quick {
		steps = 60
	}
	task, err := yolo.NewDetectionTask(8, 2, 0.1, seed)
	if err != nil {
		return nil, err
	}
	spec := yolo.Spec{Variant: yolo.VariantSqueezed, InC: 1, In: 8, Stages: 2, Width: 4,
		SqueezeRatio: 0.5, GridClasses: task.Classes()}
	probe, _ := task.Batch(1)
	const eps = 0.05

	// Untrained baseline.
	net0, err := yolo.Build(spec, seed)
	if err != nil {
		return nil, err
	}
	if err := addRowFor(t, "untrained", net0, task, probe.Data, eps); err != nil {
		return nil, err
	}

	// Standard training.
	netStd, err := yolo.Build(spec, seed)
	if err != nil {
		return nil, err
	}
	if _, err := yolo.TrainEval(netStd, task, steps, 16, 1, 5e-3); err != nil {
		return nil, err
	}
	if err := addRowFor(t, "standard", netStd, task, probe.Data, eps); err != nil {
		return nil, err
	}

	// Adversarial (convex-relaxation) training.
	netAdv, err := yolo.Build(spec, seed)
	if err != nil {
		return nil, err
	}
	if err := core.AdversarialTrain(netAdv, task, steps, 16, eps, 5e-3); err != nil {
		return nil, err
	}
	if err := addRowFor(t, "adversarial (RCR)", netAdv, task, probe.Data, eps); err != nil {
		return nil, err
	}
	t.AddNote("area gap = Σ triangle areas over unstable neurons inside the eps-box (lower = tighter relaxation)")
	return t, nil
}

// oscillationOf is Oscillation for an arbitrary loss trace.
func oscillationOf(xs []float64, window int) float64 {
	tr := gan.TrainingTrace{DLoss: xs}
	return tr.Oscillation(window)
}

func addRowFor(t *Table, name string, net *nn.Sequential, task *yolo.DetectionTask, probe []float64, eps float64) error {
	gap, unstable, err := core.RelaxationGapSummary(net, []int{1, 8, 8}, probe, eps)
	if err != nil {
		return err
	}
	vn, err := yolo.ToVerifyNetwork(net, []int{1, 8, 8})
	if err != nil {
		return err
	}
	lb, err := verify.IBP(vn, verify.BoxAround(probe, eps))
	if err != nil {
		return err
	}
	count := 0
	for _, layer := range lb.Pre {
		count += len(layer)
	}
	meanWidth := 0.0
	if count > 0 {
		meanWidth = lb.TotalWidth() / float64(count)
	}
	res, err := yolo.TrainEval(net, task, 0, 16, 200, 5e-3)
	if err != nil {
		return err
	}
	t.AddRow(name, f(meanWidth), f(gap), fi(unstable), fpct(res.Accuracy))
	return nil
}
