package experiments

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/minlp"
	"repro/internal/pso"
	"repro/internal/qos"
)

// T5RRAQoS reproduces the paper's motivating workload: radio resource
// allocation with diverse QoS (eMBB / URLLC / mMTC) solved three ways —
// greedy heuristic, PSO metaheuristic, and exact branch and bound over the
// discretized MINLP. Rows report spectral efficiency, per-class QoS
// satisfaction, and runtime; the expected shape is
// greedy <= PSO <= exact on rate, with the inverse ordering on runtime.
func T5RRAQoS(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:    "T5",
		Title: "RRA with diverse QoS: greedy vs PSO vs exact BnB",
		Header: []string{"solver", "instance", "spectral eff (b/s/Hz)", "QoS met",
			"eMBB", "URLLC", "mMTC", "time", "work"},
	}
	type inst struct {
		name         string
		e, u, m, rbs int
	}
	instances := []inst{
		{"small (1/1/1 x6RB)", 1, 1, 1, 6},
		{"medium (2/1/2 x10RB)", 2, 1, 2, 10},
	}
	if quick {
		instances = instances[:1]
	}
	for _, in := range instances {
		p, err := qos.GenerateProblem(in.e, in.u, in.m, in.rbs, seed)
		if err != nil {
			return nil, err
		}
		classCell := func(rep *qos.Report, c qos.Class) string {
			return fi(rep.QoSMetByClass[c]) + "/" + fi(rep.UsersByClass[c])
		}
		addRow := func(solver string, rep *qos.Report, d time.Duration, work string) {
			t.AddRow(solver, in.name, f(rep.SpectralEfficiency), fbool(rep.AllQoSMet),
				classCell(rep, qos.ClassEMBB), classCell(rep, qos.ClassURLLC),
				classCell(rep, qos.ClassMMTC), d.Round(time.Microsecond).String(), work)
		}

		st := time.Now()
		gAlloc, err := p.SolveGreedy()
		if err != nil {
			return nil, err
		}
		gDur := time.Since(st)
		gRep, err := p.Evaluate(gAlloc)
		if err != nil {
			return nil, err
		}
		addRow("greedy", gRep, gDur, "-")

		st = time.Now()
		pAlloc, pRes, err := p.SolvePSO(pso.Options{Seed: seed, Swarm: 30, MaxIter: 200,
			Inertia: pso.DefaultAdaptiveInertia(), StagnationWindow: 20})
		if err != nil {
			return nil, err
		}
		pDur := time.Since(st)
		pRep, err := p.Evaluate(pAlloc)
		if err != nil {
			return nil, err
		}
		addRow("PSO (adaptive)", pRep, pDur, fi(pRes.Evals)+" evals")

		// Continuous-power solve (the paper's literal MINLP form) on the
		// small instance only — it is the most expensive formulation.
		if in.rbs <= 6 {
			st = time.Now()
			tangents := 6
			contNodes := 30000
			if quick {
				tangents = 4
				contNodes = 8000
			}
			cont, err := p.SolveContinuousExact(tangents, minlp.Options{MaxNodes: contNodes})
			if err != nil && !errors.Is(err, minlp.ErrBudget) {
				return nil, err
			}
			cDur := time.Since(st)
			if cont.Alloc != nil {
				cRep, err := p.Evaluate(cont.Alloc)
				if err != nil {
					return nil, err
				}
				label := "BnB, continuous power"
				if cont.BnB.Status == minlp.StatusBudget {
					label = "BnB, cont. power (budget)"
				}
				addRow(label, cRep, cDur, fi(cont.BnB.Nodes)+" nodes")
			}
		}

		st = time.Now()
		maxNodes := 60000
		if quick {
			maxNodes = 20000
		}
		eAlloc, eRes, err := p.SolveExact(minlp.Options{MaxNodes: maxNodes})
		if err != nil && !errors.Is(err, minlp.ErrBudget) {
			return nil, err
		}
		eDur := time.Since(st)
		if eAlloc != nil {
			eRep, err := p.Evaluate(eAlloc)
			if err != nil {
				return nil, err
			}
			label := "exact BnB"
			work := fi(eRes.Nodes) + " nodes"
			if eRes.Status == minlp.StatusBudget {
				label = "BnB (budget)"
				gap := (eRes.Objective - eRes.BestBound) / -eRes.BestBound
				work += fmt.Sprintf(" gap %.1f%%", 100*gap)
			}
			addRow(label, eRep, eDur, work)
		} else {
			t.AddRow("exact BnB", in.name, "-", eRes.Status.String(), "-", "-", "-",
				eDur.Round(time.Microsecond).String(), fi(eRes.Nodes)+" nodes")
		}
	}
	t.AddNote("expected shape: exact >= PSO >= greedy on spectral efficiency when QoS is feasible; runtime ordering reversed")
	return t, nil
}
