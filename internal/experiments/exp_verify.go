package experiments

import (
	"errors"
	"time"

	"repro/internal/rng"
	"repro/internal/verify"
	"repro/internal/yolo"
)

// T2SqueezeTradeoff reproduces the paper's §II-B claim that the squeezed
// MSY3I has fewer parameters than the plain YOLO-style backbone "with only
// the slightest degradation in performance": both variants are trained on
// the detection proxy task and compared on parameter count and accuracy.
func T2SqueezeTradeoff(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "T2",
		Title:  "plain vs squeezed (MSY3I) backbone: parameters vs accuracy",
		Header: []string{"variant", "squeeze ratio", "params", "param reduction", "accuracy", "final loss"},
	}
	task, err := yolo.NewDetectionTask(8, 2, 0.1, seed)
	if err != nil {
		return nil, err
	}
	steps := 200
	if quick {
		steps = 60
	}
	type variant struct {
		name  string
		spec  yolo.Spec
		ratio string
	}
	base := yolo.Spec{InC: 1, In: 8, Stages: 2, Width: 8, GridClasses: task.Classes()}
	plain := base
	plain.Variant = yolo.VariantPlain
	variants := []variant{{"plain (YOLO-style)", plain, "-"}}
	for _, ratio := range []float64{0.5, 0.25, 0.125} {
		if quick && ratio < 0.5 {
			break
		}
		s := base
		s.Variant = yolo.VariantSqueezed
		s.SqueezeRatio = ratio
		variants = append(variants, variant{"squeezed (MSY3I)", s, f(ratio)})
	}
	var plainParams int
	for i, v := range variants {
		net, err := yolo.Build(v.spec, seed)
		if err != nil {
			return nil, err
		}
		res, err := yolo.TrainEval(net, task, steps, 16, 300, 1e-2)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			plainParams = res.Params
		}
		reduction := "-"
		if i > 0 && plainParams > 0 {
			reduction = fpct(1 - float64(res.Params)/float64(plainParams))
		}
		t.AddRow(v.name, v.ratio, fi(res.Params), reduction, fpct(res.Accuracy), f(res.FinalLoss))
	}
	t.AddNote("paper claim: parameter count drops with squeezing while accuracy degrades only slightly")
	return t, nil
}

// T3VerifierTradeoff reproduces the paper's §II-B-2 comparison of exact
// (complete) vs relaxed (incomplete) verifiers: exact answers are
// definitive but cost explodes with unstable neurons; relaxed verifiers
// are fast but suffer false negatives (failing to certify truly robust
// networks). Ground truth per instance comes from the exact verifier.
func T3VerifierTradeoff(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "T3",
		Title:  "exact vs relaxed robustness verification",
		Header: []string{"verifier", "width", "robust found", "falsified", "unknown (FN)", "mean time", "mean LPs/nodes"},
	}
	widths := []int{4, 8, 12}
	instances := 12
	if quick {
		widths = []int{4}
		instances = 4
	}
	r := rng.New(seed)
	for _, w := range widths {
		var ibpS, crownS, triS, exS verifyStat
		for k := 0; k < instances; k++ {
			net := randomVerifyNet(r, []int{3, w, w, 2})
			x := []float64{r.Norm() * 0.3, r.Norm() * 0.3, r.Norm() * 0.3}
			box := verify.BoxAround(x, 0.08)
			y := net.Forward(append([]float64(nil), x...))
			c := []float64{1, -1}
			if y[1] > y[0] {
				c = []float64{-1, 1}
			}
			spec := &verify.Spec{C: c, D: 0.02}

			st := time.Now()
			ibp, err := verify.VerifyIBP(net, box, spec)
			if err != nil {
				return nil, err
			}
			tally(&ibpS, ibp.Verdict, time.Since(st), 0)

			st = time.Now()
			crown, err := verify.VerifyCROWN(net, box, spec)
			if err != nil {
				return nil, err
			}
			tally(&crownS, crown.Verdict, time.Since(st), 0)

			st = time.Now()
			tri, err := verify.VerifyTriangle(net, box, spec)
			if err != nil {
				return nil, err
			}
			tally(&triS, tri.Verdict, time.Since(st), tri.LPs)

			st = time.Now()
			ex, err := verify.VerifyExact(net, box, spec, verify.ExactOptions{MaxNodes: 3000})
			if err != nil && !errors.Is(err, verify.ErrBudget) {
				return nil, err
			}
			v := verify.VerdictUnknown
			if err == nil {
				v = ex.Verdict
			}
			tally(&exS, v, time.Since(st), ex.Nodes)
		}
		row := func(name string, s verifyStat) {
			t.AddRow(name, fi(w), fi(s.robust), fi(s.falsified), fi(s.unknown),
				(s.dur / time.Duration(instances)).String(), fi(s.work/instances))
		}
		row("IBP (loosest)", ibpS)
		row("CROWN (backward linear)", crownS)
		row("triangle LP (relaxed)", triS)
		row("BnB (exact)", exS)
	}
	t.AddNote("relaxed verifiers' 'unknown' on instances the exact verifier certifies are the paper's false negatives")
	t.AddNote("exact node counts grow with width (unstable ReLUs): the NP-hardness the paper cites")
	return t, nil
}

// verifyStat accumulates per-verifier outcomes.
type verifyStat struct {
	robust, falsified, unknown int
	dur                        time.Duration
	work                       int
}

func tally(s *verifyStat, v verify.Verdict, d time.Duration, work int) {
	switch v {
	case verify.VerdictRobust:
		s.robust++
	case verify.VerdictFalsified:
		s.falsified++
	default:
		s.unknown++
	}
	s.dur += d
	s.work += work
}

// randomVerifyNet draws a random affine/ReLU network with the given layer
// dimensions.
func randomVerifyNet(r *rng.Rand, dims []int) *verify.Network {
	n := &verify.Network{}
	for l := 0; l+1 < len(dims); l++ {
		layer := verify.AffineLayer{B: make([]float64, dims[l+1])}
		for i := 0; i < dims[l+1]; i++ {
			row := make([]float64, dims[l])
			for j := range row {
				row[j] = r.Norm() * 0.7
			}
			layer.W = append(layer.W, row)
			layer.B[i] = 0.1 * r.Norm()
		}
		n.Layers = append(n.Layers, layer)
	}
	return n
}
