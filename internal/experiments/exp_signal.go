package experiments

import (
	"repro/internal/ofdm"
	"repro/internal/yolo"
)

// A4SpectrumSensing grounds the paper's §IV-A sentence — "STFT is a key
// functionality in many OFDM-based wireless systems and is often used as
// the basis for signal detection and classification in 5G and beyond" —
// end to end: an OFDM link built on the FFT kernel (BER vs noise sanity
// sweep), then MSY3I variants classifying which band carries a
// transmission from STFT spectrogram features.
func A4SpectrumSensing(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "A4",
		Title:  "OFDM link + spectrum sensing from STFT features",
		Header: []string{"stage", "configuration", "metric", "value"},
	}
	// --- OFDM BER sweep over the fft kernel. ---
	cfg := ofdm.Config{NumSubcarriers: 64, CyclicPrefix: 8, ActiveCarriers: 40}
	noises := []float64{0, 0.1, 0.3, 0.6}
	symbols := 60
	if quick {
		noises = []float64{0, 0.3}
		symbols = 20
	}
	for _, sd := range noises {
		ch, err := ofdm.NewRayleighChannel(4, sd, seed)
		if err != nil {
			return nil, err
		}
		ber, err := ofdm.BERTrial(cfg, ch, symbols, seed)
		if err != nil {
			return nil, err
		}
		t.AddRow("OFDM link", "QPSK, 4-tap Rayleigh, noise sd "+f(sd), "BER", f(ber))
	}

	// --- Spectrum sensing with MSY3I on STFT spectrograms. ---
	steps := 150
	if quick {
		steps = 50
	}
	snrs := []float64{3, 1.5}
	if quick {
		snrs = snrs[:1]
	}
	for _, snr := range snrs {
		task, err := yolo.NewSpectrumTask(4, 8, snr, seed)
		if err != nil {
			return nil, err
		}
		for _, variant := range []yolo.Variant{yolo.VariantPlain, yolo.VariantSqueezed} {
			spec := yolo.Spec{
				Variant: variant, InC: 1, In: 8, Stages: 2, Width: 6,
				SqueezeRatio: 0.33, GridClasses: task.Classes(),
			}
			net, err := yolo.Build(spec, seed)
			if err != nil {
				return nil, err
			}
			res, err := yolo.TrainEvalSpectrum(net, task, steps, 16, 200, 1e-2)
			if err != nil {
				return nil, err
			}
			t.AddRow("spectrum sensing", variant.String()+" MSY3I, tone SNR "+f(snr),
				"accuracy ("+fi(res.Params)+" params)", fpct(res.Accuracy))
		}
	}
	t.AddNote("BER is 0 on the noiseless channel (CP defeats multipath exactly) and grows with noise")
	t.AddNote("band classification stays far above the 25%% chance line even at reduced SNR; squeezed ~ plain")
	return t, nil
}
