package experiments

import (
	"errors"
	"time"

	"repro/internal/minlp"
	"repro/internal/qos"
)

// A5NetworkSlicing examines the paper's framing that "network slicing and
// SDNs offer a framework for supporting diverse sets of QoS, [but]
// ultimately it comes down to the resource management algorithm": resource
// blocks are partitioned into per-class slices (each slice solving its own
// exact RRA) and compared against the global unsliced optimum — measuring
// what the isolation of slicing costs in spectral efficiency.
func A5NetworkSlicing(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "A5",
		Title:  "network slicing vs global allocation",
		Header: []string{"scheme", "plan (eMBB/URLLC/mMTC RBs)", "rate (Mb/s)", "all QoS", "time"},
	}
	p, err := qos.GenerateProblem(1, 1, 1, 6, seed)
	if err != nil {
		return nil, err
	}
	nodeBudget := 20000
	if quick {
		nodeBudget = 4000
	}

	st := time.Now()
	gAlloc, gRes, err := p.SolveExact(minlp.Options{MaxNodes: 5 * nodeBudget})
	if err != nil && !errors.Is(err, minlp.ErrBudget) {
		return nil, err
	}
	gDur := time.Since(st)
	if gAlloc != nil {
		rep, err := p.Evaluate(gAlloc)
		if err != nil {
			return nil, err
		}
		t.AddRow("global exact (no slicing)", "-", f(rep.TotalRateBps/1e6),
			fbool(rep.AllQoSMet), gDur.Round(time.Millisecond).String())
	} else {
		t.AddRow("global exact (no slicing)", "-", "-", gRes.Status.String(),
			gDur.Round(time.Millisecond).String())
	}

	st = time.Now()
	equal, _, err := p.EvaluateSlicing(qos.SlicePlan{EMBB: 2, URLLC: 2, MMTC: 2}, nodeBudget)
	if err != nil {
		return nil, err
	}
	eqDur := time.Since(st)
	t.AddRow("equal-split slices", "2/2/2", f(equal.TotalRateBps/1e6),
		fbool(equal.AllQoSMet), eqDur.Round(time.Millisecond).String())

	st = time.Now()
	best, _, err := p.OptimizeSlicing(nodeBudget)
	if err != nil {
		return nil, err
	}
	opDur := time.Since(st)
	t.AddRow("optimized slices", fi(best.Plan.EMBB)+"/"+fi(best.Plan.URLLC)+"/"+fi(best.Plan.MMTC),
		f(best.TotalRateBps/1e6), fbool(best.AllQoSMet), opDur.Round(time.Millisecond).String())

	t.AddNote("slicing isolates classes at a spectral-efficiency cost vs the global optimum; optimizing the partition recovers part of it")
	return t, nil
}
