package experiments

import (
	"errors"

	"repro/internal/gan"
	"repro/internal/rng"
	"repro/internal/verify"
)

// A1GeneratorMixture is the ablation behind the paper's stated future work
// ("an additional DCGAN will be added to the RCR architectural stack"):
// mode coverage and sample quality as the generator mixture grows from a
// single DCGAN to four.
func A1GeneratorMixture(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "A1",
		Title:  "ablation: generator-mixture size vs mode collapse",
		Header: []string{"generators", "modes covered", "HQ samples", "fwd amplification"},
	}
	steps := 800
	counts := []int{1, 2, 3, 4}
	if quick {
		steps = 150
		counts = []int{1, 2}
	}
	data, err := gan.NewRingMixture(8, 2, 0.1, seed)
	if err != nil {
		return nil, err
	}
	for _, k := range counts {
		g, err := gan.New(gan.Config{Seed: seed, NumGenerators: k, BatchSize: 32})
		if err != nil {
			return nil, err
		}
		if _, err := gan.Train(g, data, steps); err != nil {
			return nil, err
		}
		s, err := g.Sample(600)
		if err != nil {
			return nil, err
		}
		rep, err := data.ModeCoverage(s, 0.5, 3)
		if err != nil {
			return nil, err
		}
		amp, err := g.ForwardStability(16, 1e-3)
		if err != nil {
			return nil, err
		}
		t.AddRow(fi(k), fi(rep.ModesCovered)+"/8", fpct(rep.HighQualityFrac), f(amp))
	}
	t.AddNote("paper future work: adding generators to the stack; more generators should cover more modes")
	return t, nil
}

// A2EpsSweep maps where the relaxed verifiers stop certifying as the
// perturbation radius grows — the crossover structure behind the paper's
// "tightest possible relaxation" objective. For each eps, the fraction of
// instances certified robust by IBP, triangle LP, and exact BnB.
func A2EpsSweep(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "A2",
		Title:  "ablation: certified-robust fraction vs perturbation radius",
		Header: []string{"eps", "IBP", "CROWN", "triangle LP", "exact BnB", "truly robust (exact)"},
	}
	instances := 10
	epss := []float64{0.01, 0.03, 0.06, 0.1, 0.15}
	if quick {
		instances = 4
		epss = []float64{0.01, 0.1}
	}
	r := rng.New(seed)
	nets := make([]*verify.Network, instances)
	xs := make([][]float64, instances)
	specs := make([]*verify.Spec, instances)
	for k := 0; k < instances; k++ {
		nets[k] = randomVerifyNet(r, []int{3, 8, 8, 2})
		xs[k] = []float64{0.3 * r.Norm(), 0.3 * r.Norm(), 0.3 * r.Norm()}
		y := nets[k].Forward(append([]float64(nil), xs[k]...))
		c := []float64{1, -1}
		if y[1] > y[0] {
			c = []float64{-1, 1}
		}
		specs[k] = &verify.Spec{C: c}
	}
	for _, eps := range epss {
		var ibpR, crownR, triR, exR, truly int
		for k := 0; k < instances; k++ {
			box := verify.BoxAround(xs[k], eps)
			ibp, err := verify.VerifyIBP(nets[k], box, specs[k])
			if err != nil {
				return nil, err
			}
			if ibp.Verdict == verify.VerdictRobust {
				ibpR++
			}
			crown, err := verify.VerifyCROWN(nets[k], box, specs[k])
			if err != nil {
				return nil, err
			}
			if crown.Verdict == verify.VerdictRobust {
				crownR++
			}
			tri, err := verify.VerifyTriangle(nets[k], box, specs[k])
			if err != nil {
				return nil, err
			}
			if tri.Verdict == verify.VerdictRobust {
				triR++
			}
			ex, err := verify.VerifyExact(nets[k], box, specs[k], verify.ExactOptions{MaxNodes: 4000})
			if err != nil && !errors.Is(err, verify.ErrBudget) {
				return nil, err
			}
			if err == nil && ex.Verdict == verify.VerdictRobust {
				exR++
				truly++
			}
		}
		t.AddRow(f(eps),
			fi(ibpR)+"/"+fi(instances),
			fi(crownR)+"/"+fi(instances),
			fi(triR)+"/"+fi(instances),
			fi(exR)+"/"+fi(instances),
			fi(truly)+"/"+fi(instances))
	}
	t.AddNote("IBP drops out first, then CROWN, then triangle; the gap between a relaxed column and the exact column is its false-negative band")
	return t, nil
}
