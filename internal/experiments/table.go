// Package experiments implements the reproduction harness: one function
// per figure/claim of the paper's evaluation (see DESIGN.md §4), each
// regenerating the corresponding rows/series as a printable table. The
// functions are shared by the cmd/rcrbench binary and the repository's
// benchmark suite, and their outputs are recorded in EXPERIMENTS.md.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// WriteJSON emits the table as indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			fmt.Fprintf(w, "%s%s  ", c, strings.Repeat(" ", pad))
		}
		fmt.Fprintln(w)
	}
	printRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Runner is an experiment entry point. quick trades thoroughness for
// speed (used by the benchmark harness and smoke tests).
type Runner func(seed uint64, quick bool) (*Table, error)

// Registry maps experiment IDs to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"f1": F1RCRStack,
		"f2": F2DualParadigm,
		"f3": F3NumericalAudit,
		"t1": T1PSOStagnation,
		"t2": T2SqueezeTradeoff,
		"t3": T3VerifierTradeoff,
		"t4": T4TraceRelaxation,
		"t5": T5RRAQoS,
		"t6": T6BatchnormPlacement,
		"t7": T7BoundTightening,
		"t8": T8StableOps,
		"a1": A1GeneratorMixture,
		"a2": A2EpsSweep,
		"a3": A3MultiRAT,
		"a4": A4SpectrumSensing,
		"a5": A5NetworkSlicing,
	}
}

// Order returns the canonical experiment ordering.
func Order() []string {
	return []string{"f1", "f2", "f3", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "a1", "a2", "a3", "a4", "a5"}
}

func f(v float64) string    { return fmt.Sprintf("%.4g", v) }
func fi(v int) string       { return fmt.Sprintf("%d", v) }
func fpct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func fsci(v float64) string { return fmt.Sprintf("%.3e", v) }
func fbool(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
