package experiments

import (
	"math"

	"repro/internal/anneal"
	"repro/internal/mat"
	"repro/internal/pso"
	"repro/internal/relax"
	"repro/internal/rng"
)

// intRastrigin is the discrete multimodal testbed for the PSO claims.
func intRastrigin(x []float64) float64 {
	s := 10 * float64(len(x))
	for _, v := range x {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return s
}

// T1PSOStagnation reproduces the paper's §II-A PSO claims: (a) naive
// rounding of velocities to discrete values stagnates prematurely, (b)
// adaptive inertia weighting (plus dispersion) mitigates it, (c) the
// distribution-over-values encoding of [9] is an alternative fix, and (d)
// small swarms already give "good enough" solutions. Success = reaching
// the global optimum (0) of the integer Rastrigin problem.
func T1PSOStagnation(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "T1",
		Title:  "discrete PSO stagnation vs adaptive inertia (integer Rastrigin, d=4)",
		Header: []string{"configuration", "success", "mean best", "mean dispersions", "mean stagnant iters"},
	}
	trials := 20
	iters := 80
	if quick {
		trials = 6
		iters = 50
	}
	dims := []pso.Dim{
		{Lo: -5, Hi: 5, Integer: true},
		{Lo: -5, Hi: 5, Integer: true},
		{Lo: -5, Hi: 5, Integer: true},
		{Lo: -5, Hi: 5, Integer: true},
	}
	type config struct {
		name     string
		inertia  pso.InertiaSchedule
		encoding pso.Encoding
		window   int
	}
	configs := []config{
		{"rounding, fixed w=0.3 (naive)", pso.ConstantInertia{W: 0.3}, pso.EncodingRounding, 0},
		{"rounding, linear 0.9->0.4", pso.LinearInertia{Start: 0.9, End: 0.4}, pso.EncodingRounding, 0},
		{"rounding, adaptive inertia", pso.DefaultAdaptiveInertia(), pso.EncodingRounding, 0},
		{"rounding, adaptive + dispersion", pso.DefaultAdaptiveInertia(), pso.EncodingRounding, 15},
		{"distribution encoding [9]", pso.LinearInertia{Start: 0.9, End: 0.4}, pso.EncodingDistribution, 0},
	}
	for _, cfg := range configs {
		succ := 0
		var bestSum, dispSum, stagSum float64
		for tr := 0; tr < trials; tr++ {
			res, err := pso.Minimize(&pso.Problem{Dims: dims, Eval: intRastrigin}, pso.Options{
				Seed:             seed + uint64(tr),
				Swarm:            8,
				MaxIter:          iters,
				Inertia:          cfg.inertia,
				Encoding:         cfg.encoding,
				StagnationWindow: cfg.window,
				Parallel:         true, // intRastrigin is pure
			})
			if err != nil {
				return nil, err
			}
			if res.F == 0 {
				succ++
			}
			bestSum += res.F
			dispSum += float64(res.Dispersions)
			stagSum += float64(res.StagnantIters)
		}
		ft := float64(trials)
		t.AddRow(cfg.name, fi(succ)+"/"+fi(trials), f(bestSum/ft), f(dispSum/ft), f(stagSum/ft))
	}
	// Langevin-style baseline the paper's intro mentions ("Langevin
	// Diffusions (with the possibility of premature stagnation of
	// particles at local optima)"): simulated annealing at a matched
	// evaluation budget (swarm 8 x iters evaluations).
	{
		succ := 0
		var bestSum float64
		for tr := 0; tr < trials; tr++ {
			res, err := anneal.Minimize(&anneal.Problem{
				Dims: []anneal.Dim{
					{Lo: -5, Hi: 5, Integer: true},
					{Lo: -5, Hi: 5, Integer: true},
					{Lo: -5, Hi: 5, Integer: true},
					{Lo: -5, Hi: 5, Integer: true},
				},
				Eval: intRastrigin,
			}, anneal.Options{Seed: seed + uint64(tr), Iters: 8 * iters})
			if err != nil {
				return nil, err
			}
			if res.F == 0 {
				succ++
			}
			bestSum += res.F
		}
		t.AddRow("simulated annealing (Langevin-style)", fi(succ)+"/"+fi(trials),
			f(bestSum/float64(trials)), "-", "-")
	}

	// Swarm-size sweep ("even relatively small swarm sizes are fairly
	// consistent").
	for _, swarm := range []int{5, 10, 20, 40} {
		if quick && swarm > 10 {
			break
		}
		succ := 0
		for tr := 0; tr < trials; tr++ {
			res, err := pso.Minimize(&pso.Problem{Dims: dims, Eval: intRastrigin}, pso.Options{
				Seed:             seed + 1000 + uint64(tr),
				Swarm:            swarm,
				MaxIter:          iters,
				Inertia:          pso.DefaultAdaptiveInertia(),
				Encoding:         pso.EncodingRounding,
				StagnationWindow: 15,
				Parallel:         true, // intRastrigin is pure
			})
			if err != nil {
				return nil, err
			}
			if res.F == 0 {
				succ++
			}
		}
		t.AddRow("swarm size "+fi(swarm)+" (adaptive+disp)", fi(succ)+"/"+fi(trials), "", "", "")
	}
	t.AddNote("paper claim: rounding-induced stagnation is mitigated by increased/adaptive inertia; compare rows 1 vs 3-4")
	return t, nil
}

// T4TraceRelaxation reproduces the paper's §IV-C chain (Eqs. 7-10): the
// nonconvex rank-minimization problem is relaxed to trace minimization and
// solved as an SDP; the table reports recovery quality of the diagonal +
// low-rank split across sizes and true ranks.
func T4TraceRelaxation(seed uint64, quick bool) (*Table, error) {
	t := &Table{
		ID:     "T4",
		Title:  "RMP -> TMP -> SDP: diagonal + low-rank recovery (Eqs. 8-10)",
		Header: []string{"n", "true rank", "recovered rank", "residual ||Rs-(Rc+Rn)||", "tr(Rc) vs truth", "SDP iters"},
	}
	r := rng.New(seed)
	sizes := [][2]int{{4, 1}, {5, 1}, {6, 2}}
	if quick {
		sizes = [][2]int{{4, 1}}
	}
	for _, sz := range sizes {
		n, rank := sz[0], sz[1]
		// Ground truth: Rc0 = Σ v vᵀ (rank terms), Rn0 positive diagonal.
		rc0 := mat.New(n, n)
		for k := 0; k < rank; k++ {
			v := make([]float64, n)
			for i := range v {
				v[i] = 1 + r.Float64()
			}
			vv := mat.OuterProduct(v, v)
			for i := range rc0.Data {
				rc0.Data[i] += vv.Data[i]
			}
		}
		rs := rc0.Clone()
		for i := 0; i < n; i++ {
			rs.Add(i, i, 0.5+r.Float64())
		}
		dec, err := relax.DecomposeDiagLowRank(rs, relax.TraceMinOptions{})
		if err != nil {
			return nil, err
		}
		tr0, _ := rc0.Trace()
		t.AddRow(fi(n), fi(rank), fi(dec.RankRc),
			fsci(dec.ResidualNorm(rs)),
			f(dec.Trace)+" vs "+f(tr0),
			fi(dec.Iterations))
	}
	t.AddNote("the trace surrogate recovers the low-rank PSD component; tr(Rc) <= tr(Rc0) since the truth is TMP-feasible")
	return t, nil
}
