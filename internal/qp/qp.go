// Package qp solves convex quadratic programs and quadratically constrained
// quadratic programs (the paper's Eq. 7) with a log-barrier interior-point
// method. The QCQP is the workhorse "step-down" problem class the paper
// places between the nonconvex MINLP and the SDP relaxation: every
// constraint matrix Pᵢ must be positive semidefinite for the problem to be
// convex, and the solver verifies this on request.
//
// A phase-1 routine produces the strictly feasible start the barrier needs,
// by minimizing an infeasibility slack with the same machinery.
package qp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/mat"
)

// ErrInfeasible is returned when phase 1 cannot find a strictly feasible
// point.
var ErrInfeasible = errors.New("qp: problem is infeasible")

// ErrNotConvex is returned by CheckConvex when some Pᵢ is not PSD.
var ErrNotConvex = errors.New("qp: constraint matrix is not positive semidefinite")

// Quad is the quadratic form f(x) = ½ xᵀPx + qᵀx + r. P may be nil for an
// affine function. P is treated as symmetric.
type Quad struct {
	P *mat.Matrix
	Q []float64
	R float64
}

// Eval returns f(x).
func (f *Quad) Eval(x []float64) float64 {
	v := f.R
	for i, qi := range f.Q {
		//lint:ignore dimcheck Quad contract: x carries one entry per quadratic term; shapes are validated by Solve
		v += qi * x[i]
	}
	if f.P != nil {
		px, _ := f.P.MulVec(x)
		v += 0.5 * mat.VecDot(x, px)
	}
	return v
}

// Grad writes ∇f(x) = Px + q into g.
func (f *Quad) Grad(x, g []float64) {
	for i := range g {
		g[i] = 0
	}
	copy(g, f.Q)
	if f.P != nil {
		px, _ := f.P.MulVec(x)
		for i := range g {
			g[i] += px[i]
		}
	}
}

// Problem is the QCQP
//
//	minimize   F0(x)
//	subject to Ineq[i](x) <= 0
//	           A x = B        (optional; A nil means no equalities)
type Problem struct {
	F0   Quad
	Ineq []Quad
	A    *mat.Matrix
	B    []float64
}

// CheckConvex verifies that the objective and every constraint matrix is
// positive semidefinite to within tol.
func (p *Problem) CheckConvex(tol float64) error {
	check := func(m *mat.Matrix, what string) error {
		if m == nil {
			return nil
		}
		ok, err := mat.IsPSD(m.Clone().Symmetrize(), tol)
		if err != nil {
			return fmt.Errorf("qp: psd check of %s: %w", what, err)
		}
		if !ok {
			return fmt.Errorf("%w: %s", ErrNotConvex, what)
		}
		return nil
	}
	if err := check(p.F0.P, "objective"); err != nil {
		return err
	}
	for i := range p.Ineq {
		if err := check(p.Ineq[i].P, fmt.Sprintf("constraint %d", i)); err != nil {
			return err
		}
	}
	return nil
}

// Options configures the barrier method. Zero fields take defaults.
type Options struct {
	T0       float64 // initial barrier weight, default 1
	Mu       float64 // barrier growth factor, default 10
	Tol      float64 // duality-gap style tolerance m/t, default 1e-8
	NewtonIt int     // Newton iterations per centering step, default 50
	// Budget bounds the run (cancellation, deadline, eval cap — one eval per
	// Newton step), checked at centering-stage boundaries. The zero budget
	// imposes nothing. Phase 1 runs under the same budget.
	Budget guard.Budget
}

func (o Options) withDefaults() Options {
	if o.T0 == 0 {
		o.T0 = 1
	}
	if o.Mu == 0 {
		o.Mu = 10
	}
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.NewtonIt == 0 {
		o.NewtonIt = 50
	}
	return o
}

// Result is the solver output.
type Result struct {
	X         []float64
	Objective float64
	// Iterations counts total Newton steps across all centering stages.
	Iterations int
	// Status is the typed termination cause: Converged on a clean exit;
	// Timeout, Canceled, or MaxIter when the budget interrupted the barrier
	// (X is then the last centered iterate — strictly feasible but not yet
	// at tolerance), which also returns a *guard.Error.
	Status guard.Status
	// Gap is the barrier duality-gap bound m/t at termination: for a
	// centered iterate, F0(X) is within Gap of the optimum. Below Tol on
	// converged exits; a-posteriori certifiers read it instead of
	// re-deriving dual multipliers.
	Gap float64
	// BarrierT is the final barrier weight t behind Gap.
	BarrierT float64
}

// Solve minimizes the problem starting from the strictly feasible x0.
// If x0 is nil, a phase-1 search is run first. The problem must be convex;
// Solve does not re-verify PSD-ness (call CheckConvex when in doubt).
func Solve(p *Problem, x0 []float64, o Options) (*Result, error) {
	o = o.withDefaults()
	n := len(p.F0.Q)
	if n == 0 && p.F0.P != nil {
		n = p.F0.P.Rows
	}
	if x0 == nil {
		var err error
		x0, err = Phase1(p, n, o)
		if err != nil {
			return nil, err
		}
	}
	for i, c := range p.Ineq {
		if c.Eval(x0) >= 0 {
			return nil, fmt.Errorf("qp: start violates constraint %d (value %g); need strict feasibility", i, c.Eval(x0))
		}
	}
	x := append([]float64(nil), x0...)
	m := len(p.Ineq)
	res := &Result{}
	t := o.T0
	ws := newCenterWS(p, len(x))
	defer ws.release()
	// setGap surfaces the barrier's own optimality evidence: with m
	// inequalities and barrier weight t, a centered iterate is within m/t
	// of optimal (0 when there are no inequalities — the Newton step then
	// solves the equality-constrained problem directly).
	setGap := func() {
		res.BarrierT = t
		if m > 0 {
			res.Gap = float64(m) / t
		}
	}
	mon := o.Budget.Start()
	for {
		// Budget is checked at centering-stage boundaries: every iterate is
		// strictly feasible, so an interrupted run still returns a usable
		// (suboptimal) point rather than nothing.
		if st := mon.Check(res.Iterations); st != guard.StatusOK {
			res.X = x
			res.Objective = p.F0.Eval(x)
			res.Status = st
			setGap()
			return res, guard.Err(st, "qp: barrier interrupted after %d newton steps", res.Iterations)
		}
		it, err := center(p, ws, x, t, o.NewtonIt)
		res.Iterations += it
		mon.AddEvals(it)
		if err != nil {
			return nil, err
		}
		if m == 0 || float64(m)/t < o.Tol {
			break
		}
		t *= o.Mu
		if t > 1e16 {
			break
		}
	}
	res.X = x
	res.Objective = p.F0.Eval(x)
	res.Status = guard.StatusConverged
	setGap()
	return res, nil
}

// centerWS holds every buffer and factorization plan the Newton centering
// loop reuses across iterations (DESIGN.md §13): the Hessian and KKT
// matrices are rebuilt in place, the LU plans keep their workspaces across
// Newton steps, and Quad evaluations run through a shared MulVecInto
// scratch. One workspace serves a whole Solve; after construction a
// centering step performs no heap allocation outside error paths.
type centerWS struct {
	h     *mat.Matrix // n×n barrier Hessian
	kkt   *mat.Matrix // (n+m)×(n+m) KKT system; nil without equalities
	rhs   []float64   // KKT right-hand side
	sol   []float64   // KKT solution
	g     []float64   // barrier gradient
	gi    []float64   // constraint-gradient scratch
	negg  []float64   // -g, the Newton right-hand side
	dx    []float64   // Newton step
	trial []float64   // line-search candidate
	px    []float64   // MulVecInto scratch for Quad evaluations
	luH   *mat.LUPlan // plan for the regularized Hessian solve
	luK   *mat.LUPlan // plan for the KKT solve; nil without equalities
}

func newCenterWS(p *Problem, n int) *centerWS {
	ws := &centerWS{
		h:     mat.New(n, n),
		g:     make([]float64, n),
		gi:    make([]float64, n),
		negg:  make([]float64, n),
		dx:    make([]float64, n),
		trial: make([]float64, n),
		px:    make([]float64, n),
		luH:   mat.LUPlanFor(n),
	}
	if p.A != nil && p.A.Rows > 0 {
		m := p.A.Rows
		ws.kkt = mat.New(n+m, n+m)
		ws.rhs = make([]float64, n+m)
		ws.sol = make([]float64, n+m)
		ws.luK = mat.LUPlanFor(n + m)
	}
	return ws
}

// release returns the LU plans to their shape pools.
func (ws *centerWS) release() {
	ws.luH.Release()
	if ws.luK != nil {
		ws.luK.Release()
	}
}

// eval is Quad.Eval through the workspace scratch: the identical operation
// sequence, with MulVecInto replacing the allocating MulVec.
func (ws *centerWS) eval(f *Quad, x []float64) float64 {
	v := f.R
	for i, qi := range f.Q {
		//lint:ignore dimcheck Quad contract: x carries one entry per quadratic term; shapes are validated by Solve
		v += qi * x[i]
	}
	if f.P != nil {
		px := ws.px[:f.P.Rows]
		f.P.MulVecInto(px, x)
		v += 0.5 * mat.VecDot(x, px)
	}
	return v
}

// grad is Quad.Grad through the workspace scratch.
func (ws *centerWS) grad(f *Quad, x, g []float64) {
	for i := range g {
		g[i] = 0
	}
	copy(g, f.Q)
	if f.P != nil {
		px := ws.px[:f.P.Rows]
		f.P.MulVecInto(px, x)
		for i := range g {
			//lint:ignore dimcheck px is sliced to f.P.Rows == len(g) for valid problems
			g[i] += px[i]
		}
	}
}

// center Newton-minimizes t·F0(x) - Σ log(-fᵢ(x)) subject to Ax=b, updating
// x in place. It returns the number of Newton iterations used.
func center(p *Problem, ws *centerWS, x []float64, t float64, maxIt int) (int, error) {
	n := len(x)
	g, gi := ws.g, ws.gi
	h := ws.h
	for it := 0; it < maxIt; it++ {
		// Gradient and Hessian of the barrier-augmented objective.
		hd := h.Data
		for i := range hd {
			hd[i] = 0
		}
		if p.F0.P != nil {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					h.Set(i, j, t*0.5*(p.F0.P.At(i, j)+p.F0.P.At(j, i)))
				}
			}
		}
		ws.grad(&p.F0, x, g)
		for i := range g {
			g[i] *= t
		}
		for ci := range p.Ineq {
			c := &p.Ineq[ci]
			fi := ws.eval(c, x)
			if fi >= 0 {
				return it, fmt.Errorf("qp: iterate left the feasible region at constraint %d", ci)
			}
			inv := -1 / fi // = 1/(-fi) > 0
			ws.grad(c, x, gi)
			for i := range g {
				//lint:ignore dimcheck gi is the workspace's n-length gradient scratch, sized to g at construction
				g[i] += inv * gi[i]
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					v := inv * inv * gi[i] * gi[j]
					if c.P != nil {
						v += inv * 0.5 * (c.P.At(i, j) + c.P.At(j, i))
					}
					h.Add(i, j, v)
				}
			}
		}
		// Newton step via the KKT system when equalities are present.
		dx := ws.dx
		var err error
		if p.A != nil && p.A.Rows > 0 {
			dx, err = ws.kktStep(p.A, g)
		} else {
			// Regularize lightly for safety.
			for i := 0; i < n; i++ {
				h.Add(i, i, 1e-12)
			}
			for i, gv := range g {
				ws.negg[i] = -gv
			}
			if err = ws.luH.Factor(h); err == nil {
				ws.luH.SolveInto(dx, ws.negg)
			}
		}
		if err != nil {
			return it, fmt.Errorf("qp: newton step: %w", err)
		}
		lambda2 := -mat.VecDot(g, dx)
		if lambda2/2 < 1e-12 {
			return it, nil
		}
		// Backtracking line search preserving strict feasibility.
		step := 1.0
		phi0 := ws.barrierValue(p, x, t)
		for ls := 0; ls < 60; ls++ {
			trial := ws.trial
			for i := range x {
				//lint:ignore dimcheck trial is an n-length workspace buffer sized to x
				trial[i] = x[i] + step*dx[i]
			}
			if ws.strictlyFeasible(p, trial) && ws.barrierValue(p, trial, t) <= phi0-1e-4*step*lambda2 {
				copy(x, trial)
				break
			}
			step *= 0.5
			if ls == 59 {
				return it, nil // cannot improve further
			}
		}
	}
	return maxIt, nil
}

func (ws *centerWS) strictlyFeasible(p *Problem, x []float64) bool {
	for i := range p.Ineq {
		if ws.eval(&p.Ineq[i], x) >= 0 {
			return false
		}
	}
	return true
}

func (ws *centerWS) barrierValue(p *Problem, x []float64, t float64) float64 {
	v := t * ws.eval(&p.F0, x)
	for i := range p.Ineq {
		fi := ws.eval(&p.Ineq[i], x)
		if fi >= 0 {
			return math.Inf(1)
		}
		v -= math.Log(-fi)
	}
	return v
}

// kktStep solves [H Aᵀ; A 0] [dx; w] = [-g; 0] into the workspace and
// returns dx (a prefix of ws.sol, valid until the next call). The residual
// A·dx = 0 keeps equality-feasible iterates equality-feasible.
func (ws *centerWS) kktStep(a *mat.Matrix, g []float64) ([]float64, error) {
	h := ws.h
	n := h.Rows
	m := a.Rows
	k := ws.kkt
	kd := k.Data
	for i := range kd {
		kd[i] = 0
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			k.Set(i, j, h.At(i, j))
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			k.Set(n+i, j, a.At(i, j))
			k.Set(j, n+i, a.At(i, j))
		}
	}
	rhs := ws.rhs
	for i := range rhs {
		rhs[i] = 0
	}
	for i := 0; i < n; i++ {
		rhs[i] = -g[i]
	}
	if err := ws.luK.Factor(k); err != nil {
		return nil, err
	}
	ws.luK.SolveInto(ws.sol, rhs)
	return ws.sol[:n], nil
}

// Phase1 finds a strictly feasible point for p's inequality system by
// minimizing a slack s with fᵢ(x) - s <= 0 from the trivially feasible
// start (x=0, s = max fᵢ(0) + 1). It stops as soon as s < 0 and returns
// ErrInfeasible if the optimal slack is nonnegative.
func Phase1(p *Problem, n int, o Options) ([]float64, error) {
	if len(p.Ineq) == 0 {
		x := make([]float64, n)
		if p.A != nil && p.A.Rows > 0 {
			sol, err := leastNorm(p.A, p.B)
			if err != nil {
				return nil, fmt.Errorf("qp: phase 1 equality solve: %w", err)
			}
			copy(x, sol)
		}
		return x, nil
	}
	// Extended problem over (x, s).
	ext := &Problem{
		F0: Quad{Q: appendOne(make([]float64, n), 1)}, // minimize s
	}
	for i := range p.Ineq {
		c := p.Ineq[i]
		q := make([]float64, n+1)
		copy(q, c.Q)
		q[n] = -1 // ... - s <= 0
		var pm *mat.Matrix
		if c.P != nil {
			pm = mat.New(n+1, n+1)
			for r := 0; r < n; r++ {
				for cc := 0; cc < n; cc++ {
					pm.Set(r, cc, c.P.At(r, cc))
				}
			}
		}
		ext.Ineq = append(ext.Ineq, Quad{P: pm, Q: q, R: c.R})
	}
	if p.A != nil && p.A.Rows > 0 {
		ea := mat.New(p.A.Rows, n+1)
		for i := 0; i < p.A.Rows; i++ {
			for j := 0; j < n; j++ {
				ea.Set(i, j, p.A.At(i, j))
			}
		}
		ext.A = ea
		ext.B = p.B
	}
	x0 := make([]float64, n+1)
	if p.A != nil && p.A.Rows > 0 {
		// The barrier's Newton step preserves Ax=b only if the start
		// satisfies it, so seed with the least-norm equality solution.
		sol, err := leastNorm(p.A, p.B)
		if err != nil {
			return nil, fmt.Errorf("qp: phase 1 equality solve: %w", err)
		}
		copy(x0, sol)
	}
	var maxF float64 = math.Inf(-1)
	for i := range p.Ineq {
		if v := p.Ineq[i].Eval(x0[:n]); v > maxF {
			maxF = v
		}
	}
	x0[n] = maxF + 1
	res, err := Solve(ext, x0, o)
	if err != nil {
		return nil, fmt.Errorf("qp: phase 1: %w", err)
	}
	if res.X[n] >= -1e-10 {
		return nil, fmt.Errorf("%w: minimal slack %g", ErrInfeasible, res.X[n])
	}
	return res.X[:n], nil
}

func appendOne(xs []float64, v float64) []float64 {
	return append(xs, v)
}

// leastNorm returns the minimum-norm solution x = Aᵀ(AAᵀ)⁻¹b of Ax=b.
func leastNorm(a *mat.Matrix, b []float64) ([]float64, error) {
	at := a.T()
	aat, err := a.Mul(at)
	if err != nil {
		return nil, err
	}
	z, err := mat.Solve(aat, b)
	if err != nil {
		return nil, err
	}
	return at.MulVec(z)
}
