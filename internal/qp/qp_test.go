package qp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/rng"
)

func near(t *testing.T, got, want, tolerance float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tolerance {
		t.Fatalf("%s = %v, want %v (tol %v)", what, got, want, tolerance)
	}
}

func TestUnconstrainedQP(t *testing.T) {
	// min ½xᵀdiag(2,4)x - [2,8]ᵀx  → x = (1, 2).
	p := &Problem{
		F0: Quad{P: mat.Diag([]float64{2, 4}), Q: []float64{-2, -8}},
	}
	res, err := Solve(p, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	near(t, res.X[0], 1, 1e-6, "x0")
	near(t, res.X[1], 2, 1e-6, "x1")
}

func TestQPWithActiveLinearConstraint(t *testing.T) {
	// min ½||x||² s.t. x1 + x2 >= 2 (i.e. 2 - x1 - x2 <= 0).
	// Optimum x = (1, 1).
	p := &Problem{
		F0: Quad{P: mat.Identity(2), Q: []float64{0, 0}},
		Ineq: []Quad{
			{Q: []float64{-1, -1}, R: 2},
		},
	}
	res, err := Solve(p, []float64{3, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	near(t, res.X[0], 1, 1e-5, "x0")
	near(t, res.X[1], 1, 1e-5, "x1")
	near(t, res.Objective, 1, 1e-5, "objective")
}

func TestQPWithEquality(t *testing.T) {
	// min ½||x||² s.t. x1 + 2x2 = 3. Optimum x = (3/5, 6/5).
	a, _ := mat.FromRows([][]float64{{1, 2}})
	p := &Problem{
		F0: Quad{P: mat.Identity(2), Q: []float64{0, 0}},
		A:  a,
		B:  []float64{3},
	}
	res, err := Solve(p, []float64{3, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	near(t, res.X[0], 0.6, 1e-6, "x0")
	near(t, res.X[1], 1.2, 1e-6, "x1")
}

func TestQCQPBallConstraint(t *testing.T) {
	// min -x1 - x2 s.t. ½xᵀ(2I)x - 1 <= 0 (i.e. ||x||² <= 1).
	// Optimum x = (1/√2, 1/√2), objective -√2.
	p := &Problem{
		F0: Quad{Q: []float64{-1, -1}},
		Ineq: []Quad{
			{P: mat.Diag([]float64{2, 2}), Q: []float64{0, 0}, R: -1},
		},
	}
	res, err := Solve(p, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := 1 / math.Sqrt2
	near(t, res.X[0], s, 1e-4, "x0")
	near(t, res.X[1], s, 1e-4, "x1")
	near(t, res.Objective, -math.Sqrt2, 1e-5, "objective")
}

func TestQCQPTwoBalls(t *testing.T) {
	// min -x1 with two unit balls centered at 0 and (1,0):
	// feasible lens; optimum at x=(1,0)... constrained also by first ball
	// ||x||<=1 → x=(1,0) boundary of both. Objective -1.
	p := &Problem{
		F0: Quad{Q: []float64{-1, 0}},
		Ineq: []Quad{
			{P: mat.Diag([]float64{2, 2}), Q: []float64{0, 0}, R: -1},
			{P: mat.Diag([]float64{2, 2}), Q: []float64{-2, 0}, R: 0}, // ||x-(1,0)||²<=1
		},
	}
	res, err := Solve(p, []float64{0.5, 0.1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	near(t, res.X[0], 1, 1e-3, "x0")
	near(t, res.X[1], 0, 1e-3, "x1")
}

func TestPhase1FindsFeasible(t *testing.T) {
	// Feasible region: x in [1, 2] via two affine constraints.
	p := &Problem{
		F0: Quad{Q: []float64{1}},
		Ineq: []Quad{
			{Q: []float64{-1}, R: 1}, // 1 - x <= 0
			{Q: []float64{1}, R: -2}, // x - 2 <= 0
		},
	}
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	near(t, res.X[0], 1, 1e-5, "x")
}

func TestPhase1Infeasible(t *testing.T) {
	p := &Problem{
		F0: Quad{Q: []float64{1}},
		Ineq: []Quad{
			{Q: []float64{1}, R: -1}, // x <= 1
			{Q: []float64{-1}, R: 3}, // x >= 3
		},
	}
	_, err := Solve(p, nil, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestStartMustBeStrictlyFeasible(t *testing.T) {
	p := &Problem{
		F0:   Quad{Q: []float64{1}},
		Ineq: []Quad{{Q: []float64{1}, R: -1}},
	}
	if _, err := Solve(p, []float64{2}, Options{}); err == nil {
		t.Fatal("want error for infeasible start")
	}
}

func TestCheckConvex(t *testing.T) {
	indef, _ := mat.FromRows([][]float64{{1, 2}, {2, 1}})
	p := &Problem{
		F0:   Quad{P: mat.Identity(2), Q: []float64{0, 0}},
		Ineq: []Quad{{P: indef, Q: []float64{0, 0}, R: -1}},
	}
	if err := p.CheckConvex(1e-9); !errors.Is(err, ErrNotConvex) {
		t.Fatalf("want ErrNotConvex, got %v", err)
	}
	p.Ineq[0].P = mat.Identity(2)
	if err := p.CheckConvex(1e-9); err != nil {
		t.Fatalf("convex problem rejected: %v", err)
	}
}

func TestQuadEvalGrad(t *testing.T) {
	f := Quad{P: mat.Diag([]float64{2, 6}), Q: []float64{1, -1}, R: 3}
	x := []float64{2, -1}
	// ½(2·4 + 6·1) + (2 + 1) + 3 = 7 + 3 + 3 = 13
	near(t, f.Eval(x), 13, 1e-12, "eval")
	g := make([]float64, 2)
	f.Grad(x, g)
	near(t, g[0], 5, 1e-12, "g0")  // 2·2 + 1
	near(t, g[1], -7, 1e-12, "g1") // 6·(-1) - 1
}

// TestRandomQPAgainstKKT builds random strongly convex QPs with a single
// active affine constraint set and validates stationarity of the returned
// point via the KKT residual.
func TestRandomQPAgainstKKT(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(3)
		d := make([]float64, n)
		q := make([]float64, n)
		for i := range d {
			d[i] = 1 + 4*r.Float64()
			q[i] = r.Norm()
		}
		p := &Problem{F0: Quad{P: mat.Diag(d), Q: q}}
		// Box |x_i| <= 10 keeps it compact (never active at optimum here
		// because the unconstrained optimum is small).
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			p.Ineq = append(p.Ineq, Quad{Q: row, R: -10})
			neg := make([]float64, n)
			neg[i] = -1
			p.Ineq = append(p.Ineq, Quad{Q: neg, R: -10})
		}
		x0 := make([]float64, n)
		res, err := Solve(p, x0, Options{})
		if err != nil {
			return false
		}
		// Interior optimum: x* = -q/d elementwise.
		for i := range d {
			want := -q[i] / d[i]
			if math.Abs(res.X[i]-want) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPhase1WithEqualities(t *testing.T) {
	// Feasible: x1 + x2 = 4 with x1 <= 3, x2 <= 3 → e.g. (2, 2) inside.
	a, _ := mat.FromRows([][]float64{{1, 1}})
	p := &Problem{
		F0: Quad{Q: []float64{1, 0}},
		Ineq: []Quad{
			{Q: []float64{1, 0}, R: -3},
			{Q: []float64{0, 1}, R: -3},
		},
		A: a,
		B: []float64{4},
	}
	res, err := Solve(p, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	near(t, res.X[0]+res.X[1], 4, 1e-6, "equality residual")
	// min x1 → x1 = 1 (since x2 <= 3).
	near(t, res.X[0], 1, 1e-4, "x0")
}

func BenchmarkQCQP(b *testing.B) {
	p := &Problem{
		F0: Quad{Q: []float64{-1, -1}},
		Ineq: []Quad{
			{P: mat.Diag([]float64{2, 2}), Q: []float64{0, 0}, R: -1},
		},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Solve(p, []float64{0, 0}, Options{})
	}
}
