package qp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/opt"
	"repro/internal/rng"
)

// TestBarrierMatchesProjectedGradient cross-checks the interior-point QP
// against the projected-gradient solver from the opt package on random
// box-constrained strongly convex QPs.
func TestBarrierMatchesProjectedGradient(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(3)
		d := make([]float64, n)
		q := make([]float64, n)
		for i := range d {
			d[i] = 1 + 3*r.Float64()
			q[i] = 3 * r.Norm()
		}
		lo, hi := -1.0, 1.0

		// Barrier formulation with box as affine inequalities.
		p := &Problem{F0: Quad{P: mat.Diag(d), Q: q}}
		for i := 0; i < n; i++ {
			up := make([]float64, n)
			up[i] = 1
			p.Ineq = append(p.Ineq, Quad{Q: up, R: -hi})
			dn := make([]float64, n)
			dn[i] = -1
			p.Ineq = append(p.Ineq, Quad{Q: dn, R: lo})
		}
		barrier, err := Solve(p, make([]float64, n), Options{})
		if err != nil {
			return false
		}

		// Projected gradient on the same problem.
		obj := opt.Objective{
			F: func(x []float64) float64 {
				var s float64
				for i := range x {
					s += 0.5*d[i]*x[i]*x[i] + q[i]*x[i]
				}
				return s
			},
			Grad: func(x, g []float64) {
				for i := range x {
					g[i] = d[i]*x[i] + q[i]
				}
			},
		}
		loV := make([]float64, n)
		hiV := make([]float64, n)
		for i := range loV {
			loV[i] = lo
			hiV[i] = hi
		}
		pg, err := opt.ProjectedGradient(obj, make([]float64, n), loV, hiV,
			opt.Options{MaxIter: 30000, GradTol: 1e-10})
		if err != nil && !errors.Is(err, opt.ErrMaxIter) {
			// An exhausted iteration budget still returns the best
			// iterate, which is accurate enough for the comparison.
			return false
		}
		// Projected gradient converges linearly near active bounds, so the
		// comparison tolerance is generous; the point of the test is that
		// two unrelated solvers agree on the same optimum.
		for i := range pg.X {
			if math.Abs(pg.X[i]-barrier.X[i]) > 5e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQCQPStationarity: at an interior barrier solution the objective
// gradient must (numerically) vanish; at a boundary solution it must point
// outward along the active constraint's gradient (KKT with a nonnegative
// multiplier).
func TestQCQPStationarity(t *testing.T) {
	p := &Problem{
		F0: Quad{Q: []float64{-1, -2}},
		Ineq: []Quad{
			{P: mat.Diag([]float64{2, 2}), Q: []float64{0, 0}, R: -1}, // ||x||² <= 1
		},
	}
	res, err := Solve(p, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// KKT: ∇f0 + λ∇g = 0 with g active → (-1,-2) + λ·2x = 0 → x ∝ (1,2)/λ,
	// on the unit circle → x = (1,2)/√5.
	want := []float64{1 / math.Sqrt(5), 2 / math.Sqrt(5)}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-4 {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
	// Multiplier recovery: λ = 1/(2x₁) must make both KKT rows vanish.
	lambda := 1 / (2 * res.X[0])
	if lambda < 0 {
		t.Fatalf("negative multiplier %v", lambda)
	}
	if r2 := -2 + lambda*2*res.X[1]; math.Abs(r2) > 1e-3 {
		t.Fatalf("KKT residual on row 2: %v", r2)
	}
}
