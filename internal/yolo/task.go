package yolo

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/rng"
)

// DetectionTask is the synthetic proxy workload: single-channel images
// containing one bright blob; the label is the grid cell the blob falls in.
// This exercises exactly what a one-scale YOLO head does — classify which
// cell contains the object — at a size trainable in milliseconds.
type DetectionTask struct {
	In    int // image size (square)
	Grid  int // label grid (Grid*Grid classes)
	Noise float64
	r     *rng.Rand
}

// NewDetectionTask builds a task; in must be divisible by grid.
func NewDetectionTask(in, grid int, noise float64, seed uint64) (*DetectionTask, error) {
	if in < 4 || grid < 2 || in%grid != 0 {
		return nil, fmt.Errorf("%w: task in=%d grid=%d", ErrSpec, in, grid)
	}
	return &DetectionTask{In: in, Grid: grid, Noise: noise, r: rng.New(seed)}, nil
}

// Classes returns the number of labels.
func (t *DetectionTask) Classes() int { return t.Grid * t.Grid }

// Batch draws n labelled images.
func (t *DetectionTask) Batch(n int) (*nn.Tensor, []int) {
	x := nn.NewTensor(n, 1, t.In, t.In)
	labels := make([]int, n)
	cell := t.In / t.Grid
	for i := 0; i < n; i++ {
		gy := t.r.Intn(t.Grid)
		gx := t.r.Intn(t.Grid)
		labels[i] = gy*t.Grid + gx
		// Blob center inside the cell, away from its border.
		cy := gy*cell + 1 + t.r.Intn(cell-1)
		cx := gx*cell + 1 + t.r.Intn(cell-1)
		for y := 0; y < t.In; y++ {
			for xx := 0; xx < t.In; xx++ {
				v := t.Noise * t.r.Norm()
				dy, dx := y-cy, xx-cx
				if dy*dy+dx*dx <= 2 {
					v += 1.0
				}
				x.Set4(i, 0, y, xx, v)
			}
		}
	}
	return x, labels
}

// TrainResult reports a short training run.
type TrainResult struct {
	FinalLoss float64
	Accuracy  float64
	Params    int
}

// TrainEval trains net on the task for the given number of steps and
// returns held-out accuracy. It is the inner loop of the PSO
// hyperparameter tuner and of the squeeze-tradeoff experiment.
func TrainEval(net *nn.Sequential, task *DetectionTask, steps, batch, evalN int, lr float64) (*TrainResult, error) {
	if lr == 0 {
		lr = 1e-2
	}
	if batch == 0 {
		batch = 16
	}
	if evalN == 0 {
		evalN = 200
	}
	opt := nn.NewAdam(lr)
	res := &TrainResult{Params: net.NumParams()}
	for s := 0; s < steps; s++ {
		x, labels := task.Batch(batch)
		net.ZeroGrad()
		out, err := net.Forward(x, true)
		if err != nil {
			return nil, fmt.Errorf("yolo: train step %d: %w", s, err)
		}
		loss, grad, err := nn.SoftmaxCrossEntropy(out, labels)
		if err != nil {
			return nil, err
		}
		if _, err := net.Backward(grad); err != nil {
			return nil, err
		}
		opt.Step(net.Params())
		res.FinalLoss = loss
	}
	// Held-out evaluation.
	x, labels := task.Batch(evalN)
	out, err := net.Forward(x, false)
	if err != nil {
		return nil, err
	}
	correct := 0
	k := out.Shape[1]
	for i := 0; i < evalN; i++ {
		best := 0
		for j := 1; j < k; j++ {
			if out.At2(i, j) > out.At2(i, best) {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(evalN)
	return res, nil
}
