package yolo

import (
	"errors"
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/verify"
)

func TestSpecValidation(t *testing.T) {
	good := Spec{Variant: VariantPlain, InC: 1, In: 8, Stages: 2, Width: 4, GridClasses: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Spec{
		{},
		{Variant: VariantPlain, InC: 0, In: 8, Stages: 1, Width: 4, GridClasses: 4},
		{Variant: VariantPlain, InC: 1, In: 8, Stages: 9, Width: 4, GridClasses: 4},
		{Variant: VariantSqueezed, InC: 1, In: 8, Stages: 1, Width: 4, SqueezeRatio: 0, GridClasses: 4},
		{Variant: VariantPlain, InC: 1, In: 8, Stages: 1, Width: 4, GridClasses: 1},
	}
	for i, c := range cases {
		if err := c.Validate(); !errors.Is(err, ErrSpec) {
			t.Fatalf("case %d: want ErrSpec, got %v", i, err)
		}
	}
}

func TestBuildShapes(t *testing.T) {
	for _, v := range []Variant{VariantPlain, VariantSqueezed} {
		s := Spec{Variant: v, InC: 1, In: 8, Stages: 2, Width: 4, SqueezeRatio: 0.25, GridClasses: 16}
		net, err := Build(s, 1)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		x := nn.NewTensor(2, 1, 8, 8)
		out, err := net.Forward(x, true)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if out.Shape[0] != 2 || out.Shape[1] != 16 {
			t.Fatalf("%v: output shape %v", v, out.Shape)
		}
	}
}

func TestSqueezedHasFewerParams(t *testing.T) {
	plain := Spec{Variant: VariantPlain, InC: 1, In: 16, Stages: 3, Width: 8, GridClasses: 16}
	squeezed := plain
	squeezed.Variant = VariantSqueezed
	squeezed.SqueezeRatio = 0.25
	pPlain, err := ParamCount(plain, 1)
	if err != nil {
		t.Fatal(err)
	}
	pSq, err := ParamCount(squeezed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pSq >= pPlain {
		t.Fatalf("squeezed (%d) should have fewer params than plain (%d)", pSq, pPlain)
	}
}

func TestDetectionTaskLabels(t *testing.T) {
	task, err := NewDetectionTask(8, 2, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	x, labels := task.Batch(64)
	if x.Shape[0] != 64 || x.Shape[2] != 8 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	for _, l := range labels {
		if l < 0 || l >= task.Classes() {
			t.Fatalf("label %d out of range", l)
		}
	}
	if _, err := NewDetectionTask(8, 3, 0, 1); !errors.Is(err, ErrSpec) {
		t.Fatal("non-divisible grid should fail")
	}
}

func TestTrainingLearnsTask(t *testing.T) {
	task, err := NewDetectionTask(8, 2, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := Spec{Variant: VariantSqueezed, InC: 1, In: 8, Stages: 2, Width: 6, SqueezeRatio: 0.33, GridClasses: task.Classes()}
	net, err := Build(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainEval(net, task, 150, 16, 200, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	// 4-way task, random = 0.25; trained should be far better.
	if res.Accuracy < 0.7 {
		t.Fatalf("accuracy %v after training, want >= 0.7", res.Accuracy)
	}
}

func TestSpecFromParams(t *testing.T) {
	dims := SearchSpace()
	if len(dims) != 3 {
		t.Fatalf("search space size %d", len(dims))
	}
	s, err := SpecFromParams([]float64{8, 2, 0.25}, 1, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Width != 8 || s.Stages != 2 || s.SqueezeRatio != 0.25 {
		t.Fatalf("decoded spec %+v", s)
	}
	if _, err := SpecFromParams([]float64{8, 2}, 1, 8, 4); !errors.Is(err, ErrSpec) {
		t.Fatal("want param-count error")
	}
}

// TestToVerifyNetworkExact checks the extracted affine/ReLU network
// reproduces the original's outputs exactly (eval mode) on random inputs.
func TestToVerifyNetworkExact(t *testing.T) {
	r := rng.New(7)
	net := nn.NewSequential(
		nn.NewConv2D(1, 2, 3, 2, 1, r),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(2*4*4, 5, r),
		nn.NewReLU(),
		nn.NewDense(5, 3, r),
	)
	vn, err := ToVerifyNetwork(net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(vn.Layers) != 3 {
		t.Fatalf("extracted %d affine layers, want 3", len(vn.Layers))
	}
	for trial := 0; trial < 10; trial++ {
		x := nn.NewTensor(1, 1, 8, 8)
		flat := make([]float64, 64)
		for i := range flat {
			flat[i] = r.Norm()
			x.Data[i] = flat[i]
		}
		want, err := net.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		got := vn.Forward(flat)
		for i := range got {
			if math.Abs(got[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("trial %d output %d: %v vs %v", trial, i, got[i], want.Data[i])
			}
		}
	}
}

func TestToVerifyNetworkWithBatchNorm(t *testing.T) {
	r := rng.New(8)
	bn := nn.NewBatchNorm(4)
	net := nn.NewSequential(
		nn.NewDense(3, 4, r),
		bn,
		nn.NewReLU(),
		nn.NewDense(4, 2, r),
	)
	// Push some data through in train mode so running stats are non-trivial.
	for i := 0; i < 50; i++ {
		x := nn.NewTensor(8, 3)
		for j := range x.Data {
			x.Data[j] = r.Norm()*2 + 1
		}
		if _, err := net.Forward(x, true); err != nil {
			t.Fatal(err)
		}
	}
	vn, err := ToVerifyNetwork(net, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -1.2, 0.8}
	xt, _ := nn.FromSlice(x, 1, 3)
	want, err := net.Forward(xt, false)
	if err != nil {
		t.Fatal(err)
	}
	got := vn.Forward(append([]float64(nil), x...))
	for i := range got {
		if math.Abs(got[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("output %d: %v vs %v", i, got[i], want.Data[i])
		}
	}
}

func TestToVerifyNetworkRejectsUnsupported(t *testing.T) {
	r := rng.New(9)
	withPool := nn.NewSequential(nn.NewConv2D(1, 1, 3, 1, 1, r), nn.NewMaxPool2D(2))
	if _, err := ToVerifyNetwork(withPool, []int{1, 4, 4}); !errors.Is(err, ErrSpec) {
		t.Fatalf("want ErrSpec for maxpool, got %v", err)
	}
	withLeaky := nn.NewSequential(nn.NewDense(2, 2, r), nn.NewLeakyReLU(0.1))
	if _, err := ToVerifyNetwork(withLeaky, []int{2}); !errors.Is(err, ErrSpec) {
		t.Fatalf("want ErrSpec for leaky, got %v", err)
	}
}

// TestVerifyTrainedMSY3I runs the full pipeline: build, train briefly,
// extract, and verify a margin property around a concrete input — the
// bound-tightening substrate of the RCR loop.
func TestVerifyTrainedMSY3I(t *testing.T) {
	r := rng.New(10)
	net := nn.NewSequential(
		nn.NewDense(4, 8, r),
		nn.NewReLU(),
		nn.NewDense(8, 2, r),
	)
	vn, err := ToVerifyNetwork(net, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.5, -0.2, 0.1, 0.9}
	y := vn.Forward(append([]float64(nil), x...))
	margin := y[0] - y[1]
	spec := &verify.Spec{C: []float64{1, -1}, D: -margin + 0.5}
	box := verify.BoxAround(x, 0.01)
	res, err := verify.VerifyExact(vn, box, spec, verify.ExactOptions{MaxNodes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// With a +0.5 slack and a tiny box, the property must hold.
	if res.Verdict != verify.VerdictRobust {
		t.Fatalf("verdict %v", res.Verdict)
	}
}

// TestToVerifyNetworkFire checks the fire-module decomposition is exact.
func TestToVerifyNetworkFire(t *testing.T) {
	r := rng.New(12)
	fire := nn.NewFire(1, 2, 2, 2, r)
	net := nn.NewSequential(
		fire,
		nn.NewFlatten(),
		nn.NewDense(4*4*4, 3, r),
	)
	vn, err := ToVerifyNetwork(net, []int{1, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	// squeeze | expand | head = 3 affine layers.
	if len(vn.Layers) != 3 {
		t.Fatalf("extracted %d layers, want 3", len(vn.Layers))
	}
	for trial := 0; trial < 10; trial++ {
		x := nn.NewTensor(1, 1, 4, 4)
		flat := make([]float64, 16)
		for i := range flat {
			flat[i] = r.Norm()
			x.Data[i] = flat[i]
		}
		want, err := net.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		got := vn.Forward(flat)
		for i := range got {
			if math.Abs(got[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("trial %d output %d: %v vs %v", trial, i, got[i], want.Data[i])
			}
		}
	}
}

// TestToVerifyNetworkConsecutiveConvs checks shape tracking across plain
// conv stages (the un-squeezed backbone form).
func TestToVerifyNetworkConsecutiveConvs(t *testing.T) {
	r := rng.New(13)
	net := nn.NewSequential(
		nn.NewConv2D(1, 2, 3, 2, 1, r),
		nn.NewReLU(),
		nn.NewConv2D(2, 4, 3, 2, 1, r),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(4*2*2, 2, r),
	)
	vn, err := ToVerifyNetwork(net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	x := nn.NewTensor(1, 1, 8, 8)
	flat := make([]float64, 64)
	for i := range flat {
		flat[i] = r.Norm()
		x.Data[i] = flat[i]
	}
	want, err := net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	got := vn.Forward(flat)
	for i := range got {
		if math.Abs(got[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("output %d: %v vs %v", i, got[i], want.Data[i])
		}
	}
}

// TestToVerifyMSY3IBuild extracts a full squeezed MSY3I from Build.
func TestToVerifyMSY3IBuild(t *testing.T) {
	s := Spec{Variant: VariantSqueezed, InC: 1, In: 8, Stages: 2, Width: 4, SqueezeRatio: 0.5, GridClasses: 4}
	net, err := Build(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	vn, err := ToVerifyNetwork(net, []int{1, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	// 2 fires → 4 affine layers, plus head = 5.
	if len(vn.Layers) != 5 {
		t.Fatalf("extracted %d layers, want 5", len(vn.Layers))
	}
	r := rng.New(3)
	x := nn.NewTensor(1, 1, 8, 8)
	flat := make([]float64, 64)
	for i := range flat {
		flat[i] = r.Norm()
		x.Data[i] = flat[i]
	}
	want, _ := net.Forward(x, false)
	got := vn.Forward(flat)
	for i := range got {
		if math.Abs(got[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("output %d: %v vs %v", i, got[i], want.Data[i])
		}
	}
}
