package yolo

import (
	"errors"
	"math"
	"testing"
)

func TestSpectrumTaskValidation(t *testing.T) {
	if _, err := NewSpectrumTask(1, 8, 2, 1); !errors.Is(err, ErrSpec) {
		t.Fatal("bands=1 should fail")
	}
	if _, err := NewSpectrumTask(4, 2, 2, 1); !errors.Is(err, ErrSpec) {
		t.Fatal("img=2 should fail")
	}
	if _, err := NewSpectrumTask(4, 8, 0, 1); !errors.Is(err, ErrSpec) {
		t.Fatal("snr=0 should fail")
	}
}

func TestSpectrumBatchShapes(t *testing.T) {
	task, err := NewSpectrumTask(4, 8, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	x, labels, err := task.Batch(16)
	if err != nil {
		t.Fatal(err)
	}
	if x.Shape[0] != 16 || x.Shape[1] != 1 || x.Shape[2] != 8 || x.Shape[3] != 8 {
		t.Fatalf("batch shape %v", x.Shape)
	}
	for _, l := range labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d", l)
		}
	}
	for _, v := range x.Data {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("bad spectrogram value %v", v)
		}
	}
}

// TestSpectrumIsLearnable: the tone's band must be recoverable from the
// pooled spectrogram — a linear probe of the energy column already works,
// so the MSY3I certainly should.
func TestSpectrumIsLearnable(t *testing.T) {
	task, err := NewSpectrumTask(4, 8, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Energy-column heuristic: the frequency column (x axis) with maximal
	// total energy indicates the band.
	x, labels, err := task.Batch(200)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 200; i++ {
		bestCol, bestE := 0, -1.0
		for col := 0; col < 8; col++ {
			var e float64
			for row := 0; row < 8; row++ {
				e += x.At4(i, 0, row, col)
			}
			if e > bestE {
				bestE = e
				bestCol = col
			}
		}
		// Columns 0..7 over half-spectrum map to bands 0..3 roughly two
		// columns per band.
		pred := bestCol * 4 / 8
		if pred == labels[i] {
			correct++
		}
	}
	if correct < 120 { // 60%; chance is 25%
		t.Fatalf("energy heuristic only %d/200 — task may be unlearnable", correct)
	}
}

func TestMSY3ILearnsSpectrumSensing(t *testing.T) {
	task, err := NewSpectrumTask(4, 8, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Variant: VariantSqueezed, InC: 1, In: 8, Stages: 2, Width: 6,
		SqueezeRatio: 0.33, GridClasses: task.Classes()}
	net, err := Build(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainEvalSpectrum(net, task, 150, 16, 200, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.7 {
		t.Fatalf("spectrum-sensing accuracy %v, want >= 0.7", res.Accuracy)
	}
}
