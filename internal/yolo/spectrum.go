package yolo

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
	"repro/internal/stft"
)

// SpectrumTask is the paper's "signal detection and classification in 5G"
// workload made concrete: classify which of Bands frequency bands carries
// a narrowband transmission, from the *STFT power spectrogram* of the
// received signal. It connects the numeric kernel (stft) to the MSY3I the
// way §IV-A describes — the spectrogram is the network's input image.
type SpectrumTask struct {
	Bands   int     // classes
	Img     int     // square spectrogram image size fed to the network
	SNR     float64 // linear amplitude of the tone over unit noise
	fftSize int
	hop     int
	sigLen  int
	r       *rng.Rand
}

// NewSpectrumTask builds a task. img must divide the time/frequency grid
// sensibly; 8 or 16 are typical.
func NewSpectrumTask(bands, img int, snr float64, seed uint64) (*SpectrumTask, error) {
	if bands < 2 || img < 4 {
		return nil, fmt.Errorf("%w: spectrum bands=%d img=%d", ErrSpec, bands, img)
	}
	if snr <= 0 {
		return nil, fmt.Errorf("%w: snr %g", ErrSpec, snr)
	}
	return &SpectrumTask{
		Bands: bands, Img: img, SNR: snr,
		fftSize: 64, hop: 16, sigLen: 64 + 16*(img*2-1),
		r: rng.New(seed),
	}, nil
}

// Classes returns the number of labels.
func (t *SpectrumTask) Classes() int { return t.Bands }

// Batch draws n labelled spectrogram images of shape [n, 1, Img, Img]. It
// returns an error if the fixed STFT configuration is rejected, which
// indicates a task-construction bug rather than bad input.
func (t *SpectrumTask) Batch(n int) (*nn.Tensor, []int, error) {
	x := nn.NewTensor(n, 1, t.Img, t.Img)
	labels := make([]int, n)
	half := t.fftSize/2 + 1
	for i := 0; i < n; i++ {
		band := t.r.Intn(t.Bands)
		labels[i] = band
		// Tone frequency inside the band (bands partition [1, half-1)).
		bandWidth := (half - 2) / t.Bands
		f0 := 1 + band*bandWidth + t.r.Intn(bandWidth)
		phase := 2 * math.Pi * t.r.Float64()
		sig := make([]float64, t.sigLen)
		for s := range sig {
			sig[s] = t.SNR*math.Cos(2*math.Pi*float64(f0)*float64(s)/float64(t.fftSize)+phase) + t.r.Norm()
		}
		res, err := stft.Transform(sig, stft.Config{
			FFTSize: t.fftSize, Hop: t.hop, WinLen: t.fftSize,
			Window: stft.WindowHann, Convention: stft.ConventionSimplified,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("yolo: spectrum task stft: %w", err)
		}
		spec := stft.Spectrogram(res)
		// Pool the (frames × half) grid down to Img × Img, log-compressed.
		frames := len(spec)
		for y := 0; y < t.Img; y++ {
			for xx := 0; xx < t.Img; xx++ {
				// Average the block of spectrogram cells mapping here.
				f1 := y * frames / t.Img
				f2 := (y + 1) * frames / t.Img
				b1 := xx * half / t.Img
				b2 := (xx + 1) * half / t.Img
				var sum float64
				cnt := 0
				for fr := f1; fr < f2; fr++ {
					for bn := b1; bn < b2; bn++ {
						sum += spec[fr][bn]
						cnt++
					}
				}
				v := 0.0
				if cnt > 0 {
					v = math.Log1p(sum / float64(cnt))
				}
				x.Set4(i, 0, y, xx, v)
			}
		}
	}
	return x, labels, nil
}

// TrainEvalSpectrum trains net on the spectrum task and reports held-out
// accuracy; the mirror of TrainEval for the blob-detection proxy.
func TrainEvalSpectrum(net *nn.Sequential, task *SpectrumTask, steps, batch, evalN int, lr float64) (*TrainResult, error) {
	if lr == 0 {
		lr = 1e-2
	}
	if batch == 0 {
		batch = 16
	}
	if evalN == 0 {
		evalN = 200
	}
	opt := nn.NewAdam(lr)
	res := &TrainResult{Params: net.NumParams()}
	for s := 0; s < steps; s++ {
		x, labels, err := task.Batch(batch)
		if err != nil {
			return nil, err
		}
		net.ZeroGrad()
		out, err := net.Forward(x, true)
		if err != nil {
			return nil, fmt.Errorf("yolo: spectrum train step %d: %w", s, err)
		}
		loss, grad, err := nn.SoftmaxCrossEntropy(out, labels)
		if err != nil {
			return nil, err
		}
		if _, err := net.Backward(grad); err != nil {
			return nil, err
		}
		opt.Step(net.Params())
		res.FinalLoss = loss
	}
	x, labels, err := task.Batch(evalN)
	if err != nil {
		return nil, err
	}
	out, err := net.Forward(x, false)
	if err != nil {
		return nil, err
	}
	correct := 0
	k := out.Shape[1]
	for i := 0; i < evalN; i++ {
		best := 0
		for j := 1; j < k; j++ {
			if out.At2(i, j) > out.At2(i, best) {
				best = j
			}
		}
		if best == labels[i] {
			correct++
		}
	}
	res.Accuracy = float64(correct) / float64(evalN)
	return res, nil
}
