package yolo

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/verify"
)

// blockAtom is one affine stage inside a block: a closure running a
// layer (or fire sub-map) in eval mode.
type blockAtom func(*nn.Tensor) (*nn.Tensor, error)

// ToVerifyNetwork converts a trained nn.Sequential into the affine/ReLU
// chain the verify package certifies. Supported: Dense, Conv2D, Flatten,
// BatchNorm (eval mode) inside affine blocks; plain ReLU (LeakyReLU
// alpha=0) as block boundaries; and Fire/SpecialFire modules, which
// decompose exactly into affine→ReLU→affine→ReLU because their parallel
// expand convolutions read the same input (channel concatenation of
// parallel affine maps is one affine map). Pooling and nonzero leaky
// slopes have no affine/ReLU form and are rejected.
//
// Each affine block's matrix is materialized by basis probing: a batch of
// dim+1 inputs (zero plus each unit vector) is pushed through the block in
// eval mode, recovering b = f(0) and columns A_j = f(e_j) - b. This is
// exact because the block is affine. Flattening between blocks follows the
// tensors' row-major layout, so chained blocks compose consistently.
func ToVerifyNetwork(net *nn.Sequential, inShape []int) (*verify.Network, error) {
	if len(inShape) == 0 {
		return nil, fmt.Errorf("%w: empty input shape", ErrSpec)
	}
	var out verify.Network
	var block []blockAtom
	shape := append([]int(nil), inShape...)

	flush := func() error {
		if len(block) == 0 {
			return fmt.Errorf("%w: two consecutive ReLUs or leading ReLU", ErrSpec)
		}
		layer, outShape, err := materialize(block, shape)
		if err != nil {
			return err
		}
		out.Layers = append(out.Layers, *layer)
		shape = outShape
		block = nil
		return nil
	}
	layerAtom := func(l nn.Layer) blockAtom {
		return func(x *nn.Tensor) (*nn.Tensor, error) { return l.Forward(x, false) }
	}

	for _, l := range net.Layers {
		switch v := l.(type) {
		case *nn.Dense, *nn.Conv2D, *nn.Flatten, *nn.BatchNorm:
			block = append(block, layerAtom(l))
		case *nn.LeakyReLU:
			if v.Alpha != 0 {
				return nil, fmt.Errorf("%w: leaky ReLU (alpha=%g) is not affine/ReLU form", ErrSpec, v.Alpha)
			}
			if err := flush(); err != nil {
				return nil, err
			}
		case *nn.Fire:
			if err := appendFire(&block, flush, v); err != nil {
				return nil, err
			}
		case *nn.SpecialFire:
			if err := appendFire(&block, flush, &v.Fire); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: layer %s unsupported for verification", ErrSpec, l.Name())
		}
	}
	if len(block) > 0 {
		if err := flush(); err != nil {
			return nil, err
		}
	}
	if len(out.Layers) == 0 {
		return nil, fmt.Errorf("%w: network reduced to zero affine layers", ErrSpec)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return &out, nil
}

// appendFire decomposes a fire module into squeeze-affine | ReLU |
// expand-affine | ReLU on the running block list.
func appendFire(block *[]blockAtom, flush func() error, f *nn.Fire) error {
	*block = append(*block, func(x *nn.Tensor) (*nn.Tensor, error) { return f.SqueezeAffine(x, false) })
	if err := flush(); err != nil {
		return err
	}
	*block = append(*block, func(x *nn.Tensor) (*nn.Tensor, error) { return f.ExpandAffine(x, false) })
	return flush()
}

// materialize probes an affine block and returns the equivalent layer plus
// the block's tensor output shape (without the batch axis).
func materialize(block []blockAtom, inShape []int) (*verify.AffineLayer, []int, error) {
	dim := 1
	for _, s := range inShape {
		dim *= s
	}
	probe := nn.NewTensor(append([]int{dim + 1}, inShape...)...)
	for j := 0; j < dim; j++ {
		probe.Data[(j+1)*dim+j] = 1
	}
	x := probe
	var err error
	for i, fwd := range block {
		x, err = fwd(x)
		if err != nil {
			return nil, nil, fmt.Errorf("yolo: probing block atom %d: %w", i, err)
		}
	}
	outDim := x.Len() / (dim + 1)
	layer := &verify.AffineLayer{B: make([]float64, outDim)}
	copy(layer.B, x.Data[:outDim])
	layer.W = make([][]float64, outDim)
	for i := 0; i < outDim; i++ {
		layer.W[i] = make([]float64, dim)
		for j := 0; j < dim; j++ {
			layer.W[i][j] = x.Data[(j+1)*outDim+i] - layer.B[i]
		}
	}
	return layer, append([]int(nil), x.Shape[1:]...), nil
}
