// Package yolo builds the paper's MSY3I — the Modified Squeezed YOLO v3
// Implementation — and its unsqueezed baseline: small feedforward
// convolutional detectors in which fire layers (SqueezeNet) and special
// fire layers (SqueezeDet) replace plain convolutions to cut the parameter
// count "with only the slightest degradation in performance".
//
// The full 106-layer YOLO v3 is out of scope for a laptop build (the paper
// itself notes tuning it would require training 10^106 models); the
// architecture family here preserves what the paper's arguments rest on —
// a deep feedforward conv/ReLU backbone with optional squeezing, a
// detection-style grid head, and a hyperparameter space for the PSO to
// tune.
package yolo

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/rng"
)

// ErrSpec is returned for invalid architecture specs.
var ErrSpec = errors.New("yolo: invalid spec")

// Variant selects the backbone style.
type Variant int

// Backbone variants.
const (
	// VariantPlain uses strided 3×3 convolutions (a miniature Darknet).
	VariantPlain Variant = iota + 1
	// VariantSqueezed replaces convolutions with special fire layers — the
	// MSY3I construction.
	VariantSqueezed
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantPlain:
		return "plain"
	case VariantSqueezed:
		return "squeezed"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Spec describes an architecture instance. It doubles as the PSO search
// point: Width, Stages, and SqueezeRatio are the hyperparameters the RCR
// stack tunes.
type Spec struct {
	Variant      Variant
	InC, In      int     // input channels and (square) spatial size
	Stages       int     // downsampling stages (each halves the grid)
	Width        int     // channels after the first stage; doubles per stage
	SqueezeRatio float64 // fire squeeze ratio s/e (squeezed variant only)
	GridClasses  int     // output cells (detection head: one logit per cell)
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	switch {
	case s.Variant != VariantPlain && s.Variant != VariantSqueezed:
		return fmt.Errorf("%w: variant %d", ErrSpec, int(s.Variant))
	case s.InC < 1 || s.In < 4:
		return fmt.Errorf("%w: input %dx%dx%d", ErrSpec, s.InC, s.In, s.In)
	case s.Stages < 1 || s.In>>s.Stages < 1:
		return fmt.Errorf("%w: %d stages for size %d", ErrSpec, s.Stages, s.In)
	case s.Width < 2:
		return fmt.Errorf("%w: width %d", ErrSpec, s.Width)
	case s.Variant == VariantSqueezed && (s.SqueezeRatio <= 0 || s.SqueezeRatio > 1):
		return fmt.Errorf("%w: squeeze ratio %g", ErrSpec, s.SqueezeRatio)
	case s.GridClasses < 2:
		return fmt.Errorf("%w: %d classes", ErrSpec, s.GridClasses)
	}
	return nil
}

// Build constructs the network for the spec.
func Build(s Spec, seed uint64) (*nn.Sequential, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	var layers []nn.Layer
	inC := s.InC
	size := s.In
	width := s.Width
	for stage := 0; stage < s.Stages; stage++ {
		switch s.Variant {
		case VariantPlain:
			layers = append(layers, nn.NewConv2D(inC, width, 3, 2, 1, r), nn.NewLeakyReLU(0.1))
		case VariantSqueezed:
			sq := int(math.Max(1, math.Round(s.SqueezeRatio*float64(width))))
			e := width / 2
			if e < 1 {
				e = 1
			}
			layers = append(layers, nn.NewSpecialFire(inC, sq, e, width-e, r))
		}
		inC = width
		width *= 2
		size = (size + 1) / 2
	}
	flat := inC * size * size
	layers = append(layers, nn.NewFlatten(), nn.NewDense(flat, s.GridClasses, r))
	return nn.NewSequential(layers...), nil
}

// ParamCount builds the network and returns its trainable parameter count.
func ParamCount(s Spec, seed uint64) (int, error) {
	net, err := Build(s, seed)
	if err != nil {
		return 0, err
	}
	return net.NumParams(), nil
}

// SearchSpace returns the PSO dimensions tuning an MSY3I: width (integer),
// stages (integer), and squeeze ratio (continuous). Decode with
// SpecFromParams.
func SearchSpace() []SearchDim {
	return []SearchDim{
		{Name: "width", Lo: 4, Hi: 16, Integer: true},
		{Name: "stages", Lo: 1, Hi: 3, Integer: true},
		{Name: "squeeze", Lo: 0.125, Hi: 0.75},
	}
}

// SearchDim is one tunable hyperparameter.
type SearchDim struct {
	Name    string
	Lo, Hi  float64
	Integer bool
}

// SpecFromParams decodes a PSO position (ordered as SearchSpace) into a
// squeezed spec for the given task geometry.
func SpecFromParams(params []float64, inC, in, classes int) (Spec, error) {
	if len(params) != 3 {
		return Spec{}, fmt.Errorf("%w: %d params, want 3", ErrSpec, len(params))
	}
	s := Spec{
		Variant:      VariantSqueezed,
		InC:          inC,
		In:           in,
		Width:        int(params[0]),
		Stages:       int(params[1]),
		SqueezeRatio: params[2],
		GridClasses:  classes,
	}
	return s, s.Validate()
}
