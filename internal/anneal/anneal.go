// Package anneal implements Langevin-style stochastic global optimization
// baselines: simulated annealing with a Metropolis acceptance rule and a
// discrete random-restart hill climber. The paper's introduction lists
// "Langevin Diffusions (with the possibility of premature stagnation of
// particles at local optima)" among the general-purpose approaches to
// nonconvex problems; this package provides that comparison point for the
// PSO experiments.
package anneal

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/guard"
	"repro/internal/rng"
)

// ErrBadProblem is returned for structurally invalid search spaces.
var ErrBadProblem = errors.New("anneal: invalid problem")

// Dim bounds one dimension; Integer dims move on the integer lattice.
type Dim struct {
	Lo, Hi  float64
	Integer bool
}

// Problem is a box-constrained minimization.
type Problem struct {
	Dims []Dim
	Eval func(x []float64) float64
}

// Options configures simulated annealing. Zero fields take defaults.
type Options struct {
	Iters int     // default 2000
	T0    float64 // initial temperature, default 1
	Alpha float64 // geometric cooling factor per iteration, default 0.995
	// StepFrac scales proposal moves relative to each dim's range,
	// default 0.1.
	StepFrac float64
	Seed     uint64
	// Restarts > 0 re-seeds the walker that many times, keeping the best.
	Restarts int
	// Budget bounds the run: cancellation and deadline are checked at
	// iteration boundaries, MaxEvals counts objective evaluations. The zero
	// budget imposes nothing.
	Budget guard.Budget
}

func (o Options) withDefaults() Options {
	if o.Iters == 0 {
		o.Iters = 2000
	}
	if o.T0 == 0 {
		o.T0 = 1
	}
	if o.Alpha == 0 {
		o.Alpha = 0.995
	}
	if o.StepFrac == 0 {
		o.StepFrac = 0.1
	}
	return o
}

// Result reports the best point found.
type Result struct {
	X     []float64
	F     float64
	Evals int
	// Accepted counts accepted Metropolis moves (diagnostic for premature
	// freezing: a low acceptance ratio late in the run).
	Accepted int
	// BadEvals counts NaN objective values, each treated as +Inf so the
	// Metropolis rule and best-so-far comparisons are never frozen by a NaN
	// (which fails every comparison, silently pinning the walker).
	BadEvals int
	// Status is the typed termination cause: Converged when the cooling
	// schedule completed with a finite best, Diverged when it did not, and
	// MaxIter / Timeout / Canceled when the budget interrupted the run (X
	// then holds the best point seen so far).
	Status guard.Status
}

// Minimize runs simulated annealing (with optional restarts) on p.
func Minimize(p *Problem, o Options) (*Result, error) {
	o = o.withDefaults()
	if p == nil || p.Eval == nil || len(p.Dims) == 0 {
		return nil, fmt.Errorf("%w: nil problem, Eval, or empty dims", ErrBadProblem)
	}
	for i, d := range p.Dims {
		if !(d.Lo <= d.Hi) {
			return nil, fmt.Errorf("%w: dim %d has Lo %g > Hi %g", ErrBadProblem, i, d.Lo, d.Hi)
		}
	}
	r := rng.New(o.Seed)
	res := &Result{F: math.Inf(1)}
	mon := o.Budget.Start()
	// sanitized maps NaN objective values to +Inf (counted) so the
	// Metropolis comparisons below stay meaningful; ±Inf passes through.
	sanitized := func(f float64) float64 {
		if math.IsNaN(f) {
			res.BadEvals++
			return math.Inf(1)
		}
		return f
	}
	// record folds the current walker into the best-so-far; "<=" with a nil
	// check guarantees res.X is always populated, even when every
	// evaluation was non-finite.
	record := func(x []float64, fx float64) {
		if res.X == nil || fx < res.F {
			res.F = fx
			res.X = decode(p, x)
		}
	}
	runs := o.Restarts + 1
	for run := 0; run < runs; run++ {
		x := randomPoint(p, r)
		fx := sanitized(p.Eval(decode(p, x)))
		res.Evals++
		temp := o.T0
		for it := 0; it < o.Iters; it++ {
			mon.AddEvals(res.Evals - mon.Evals())
			if st := mon.Check(run*o.Iters + it); st != guard.StatusOK {
				record(x, fx)
				res.Status = st
				return res, guard.Err(st, "anneal: stopped after %d evaluations", res.Evals)
			}
			trial := propose(p, x, o.StepFrac, r)
			ft := sanitized(p.Eval(decode(p, trial)))
			res.Evals++
			if ft <= fx || r.Float64() < math.Exp(-(ft-fx)/math.Max(temp, 1e-300)) {
				x, fx = trial, ft
				res.Accepted++
			}
			temp *= o.Alpha
		}
		record(x, fx)
	}
	if !guard.Finite(res.F) {
		res.Status = guard.StatusDiverged
		return res, guard.Err(guard.StatusDiverged,
			"anneal: non-finite best (%g) after %d evaluations", res.F, res.Evals)
	}
	res.Status = guard.StatusConverged
	return res, nil
}

func randomPoint(p *Problem, r *rng.Rand) []float64 {
	x := make([]float64, len(p.Dims))
	for i, d := range p.Dims {
		x[i] = r.Uniform(d.Lo, d.Hi)
	}
	return x
}

// propose draws a Gaussian move in each coordinate, clipped to the box.
func propose(p *Problem, x []float64, frac float64, r *rng.Rand) []float64 {
	out := make([]float64, len(x))
	for i, d := range p.Dims {
		step := frac * (d.Hi - d.Lo)
		v := x[i] + step*r.Norm()
		if v < d.Lo {
			v = d.Lo
		}
		if v > d.Hi {
			v = d.Hi
		}
		out[i] = v
	}
	return out
}

// decode rounds integer dims for evaluation, mirroring the PSO rounding
// encoding so the two baselines face identical landscapes.
func decode(p *Problem, x []float64) []float64 {
	out := make([]float64, len(x))
	for i, d := range p.Dims {
		v := x[i]
		if d.Integer {
			v = math.Round(v)
			if v < math.Ceil(d.Lo) {
				v = math.Ceil(d.Lo)
			}
			if v > math.Floor(d.Hi) {
				v = math.Floor(d.Hi)
			}
		}
		out[i] = v
	}
	return out
}
