package anneal

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func sphere(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return s
}

func rastrigin(x []float64) float64 {
	s := 10 * float64(len(x))
	for _, v := range x {
		s += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return s
}

func box(n int, lo, hi float64, integer bool) []Dim {
	ds := make([]Dim, n)
	for i := range ds {
		ds[i] = Dim{Lo: lo, Hi: hi, Integer: integer}
	}
	return ds
}

func TestSphereConvergence(t *testing.T) {
	p := &Problem{Dims: box(3, -5, 5, false), Eval: sphere}
	res, err := Minimize(p, Options{Seed: 1, Iters: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 0.05 {
		t.Fatalf("best = %v, want near 0", res.F)
	}
}

func TestIntegerRastrigin(t *testing.T) {
	p := &Problem{Dims: box(3, -5, 5, true), Eval: rastrigin}
	res, err := Minimize(p, Options{Seed: 2, Iters: 3000, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 2 {
		t.Fatalf("best = %v, want <= 2", res.F)
	}
	for _, v := range res.X {
		if v != math.Trunc(v) {
			t.Fatalf("integer dim returned non-integer %v", v)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	p := &Problem{Dims: box(2, -3, 3, false), Eval: sphere}
	a, _ := Minimize(p, Options{Seed: 5, Iters: 500})
	b, _ := Minimize(p, Options{Seed: 5, Iters: 500})
	if a.F != b.F {
		t.Fatalf("same seed gave %v vs %v", a.F, b.F)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Minimize(nil, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Fatal("nil problem should fail")
	}
	p := &Problem{Dims: []Dim{{Lo: 2, Hi: 1}}, Eval: sphere}
	if _, err := Minimize(p, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Fatal("crossed bounds should fail")
	}
	if _, err := Minimize(&Problem{Eval: sphere}, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Fatal("empty dims should fail")
	}
}

func TestRestartsImproveOrMatch(t *testing.T) {
	p := &Problem{Dims: box(3, -5, 5, true), Eval: rastrigin}
	single, err := Minimize(p, Options{Seed: 7, Iters: 800})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Minimize(p, Options{Seed: 7, Iters: 800, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if multi.F > single.F {
		t.Fatalf("restarts made the result worse: %v vs %v", multi.F, single.F)
	}
}

func TestResultStaysInBox(t *testing.T) {
	f := func(seed uint64) bool {
		p := &Problem{Dims: box(2, -1.5, 2.5, false), Eval: sphere}
		res, err := Minimize(p, Options{Seed: seed, Iters: 200})
		if err != nil {
			return false
		}
		for _, v := range res.X {
			if v < -1.5 || v > 2.5 {
				return false
			}
		}
		return res.Evals > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnnealSphere(b *testing.B) {
	p := &Problem{Dims: box(4, -5, 5, false), Eval: sphere}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Minimize(p, Options{Seed: uint64(i), Iters: 1000})
	}
}
