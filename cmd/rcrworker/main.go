// Command rcrworker is the remote end of the distributed solve fan-out
// (internal/dist). It speaks length-prefixed wire frames and runs in one of
// three modes:
//
// Pipe mode (default) serves a single coordinator over stdin/stdout — the
// transport a process supervisor or ssh hop gives you for free:
//
//	rcrworker -name w0 -heartbeat 50ms
//
// Listen mode serves TCP, one coordinator per connection, until the process
// is killed:
//
//	rcrworker -listen 127.0.0.1:7070
//
// Smoke mode is the end-to-end self test: the binary re-executes itself as
// n pipe-mode child workers, fans a generated multi-cell instance out over
// them, and compares the merged allocation bit-for-bit against the
// single-process solve. Exit 0 means the distributed path reproduced the
// local bits with every cell certified; 1 means it did not:
//
//	rcrworker -smoke 4
//
// Fault flags (-die, -spin) exist for chaos drills: a worker that kills
// itself mid-workload or burns CPU per solve lets an operator watch the
// coordinator's hedging and fallback ladder fire against real processes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"reflect"
	"time"

	"repro/internal/dist"
	"repro/internal/guard"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rcrworker:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

type options struct {
	name      string
	heartbeat time.Duration
	die       int
	spin      int
	listen    string
	smoke     int
	cells     int
	numRBs    int
	coupling  float64
	seed      uint64
	sweeps    int
}

func parse(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("rcrworker", flag.ContinueOnError)
	fs.StringVar(&o.name, "name", "", "worker name reported in the hello frame")
	fs.DurationVar(&o.heartbeat, "heartbeat", 50*time.Millisecond, "heartbeat interval (0 disables)")
	fs.IntVar(&o.die, "die", 0, "fault drill: exit after serving N jobs (0 = never)")
	fs.IntVar(&o.spin, "spin", 0, "fault drill: busy-spin iterations per solve (straggler)")
	fs.StringVar(&o.listen, "listen", "", "serve TCP on this address instead of stdin/stdout")
	fs.IntVar(&o.smoke, "smoke", 0, "self-test: spawn N child workers and compare against the local solve")
	fs.IntVar(&o.cells, "cells", 3, "smoke: number of coupled cells")
	fs.IntVar(&o.numRBs, "rbs", 5, "smoke: resource blocks per cell")
	fs.Float64Var(&o.coupling, "coupling", 1.0, "smoke: inter-cell coupling in noise-floor units")
	fs.Uint64Var(&o.seed, "seed", 99, "smoke: instance seed")
	fs.IntVar(&o.sweeps, "sweeps", 0, "smoke: interference sweeps (0 = default)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	return o, nil
}

func run(args []string, out io.Writer) (int, error) {
	o, err := parse(args)
	if err != nil {
		return 2, err
	}
	wo := dist.WorkerOptions{
		Name:           o.name,
		HeartbeatEvery: o.heartbeat,
		DieAfterJobs:   o.die,
		SolveSpin:      o.spin,
	}
	switch {
	case o.smoke > 0:
		return smoke(o, out)
	case o.listen != "":
		return 1, listen(o.listen, wo)
	default:
		if err := dist.ServeWorker(os.Stdin, os.Stdout, wo); err != nil {
			return 1, err
		}
		return 0, nil
	}
}

// listen serves coordinators over TCP, one at a time per connection. A
// worker is a solver, not a multiplexer: each connection gets the full
// ServeWorker loop, and a transport error only costs that coordinator.
func listen(addr string, wo dist.WorkerOptions) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintln(os.Stderr, "rcrworker: listening on", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go func(c net.Conn) {
			defer c.Close()
			if err := dist.ServeWorker(c, c, wo); err != nil {
				fmt.Fprintln(os.Stderr, "rcrworker: conn:", err)
			}
		}(conn)
	}
}

// child is one spawned pipe-mode worker process viewed as a ReadWriteCloser:
// reads come from its stdout, writes go to its stdin, Close tears both down
// and reaps the process.
type child struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	out io.ReadCloser
}

func (c *child) Read(p []byte) (int, error)  { return c.out.Read(p) }
func (c *child) Write(p []byte) (int, error) { return c.in.Write(p) }

func (c *child) Close() error {
	c.in.Close()
	c.out.Close()
	return c.cmd.Wait()
}

func spawn(self string, i int) (*child, error) {
	cmd := exec.Command(self, "-name", fmt.Sprintf("smoke-%d", i))
	cmd.Stderr = os.Stderr
	in, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &child{cmd: cmd, in: in, out: out}, nil
}

// smokeReport is the JSON the smoke test prints: the verdict plus the
// coordinator's own stats ledger, so a failing run shows where the fan-out
// went instead of a bare exit code.
type smokeReport struct {
	OK           bool       `json:"ok"`
	Workers      int        `json:"workers"`
	Cells        int        `json:"cells"`
	Status       string     `json:"status"`
	LocalStatus  string     `json:"localStatus"`
	TotalRateBps float64    `json:"totalRateBps"`
	Mismatch     string     `json:"mismatch,omitempty"`
	Stats        dist.Stats `json:"stats"`
}

func smoke(o options, out io.Writer) (int, error) {
	mc, err := dist.GenerateMultiCell(o.cells, 1, 1, 1, o.numRBs, o.coupling, o.seed)
	if err != nil {
		return 2, err
	}
	mc.Sweeps = o.sweeps
	opts := dist.Options{Budget: guard.Budget{}, Seed: o.seed}

	want, err := dist.SolveLocal(mc, opts)
	if err != nil {
		return 2, fmt.Errorf("local reference: %w", err)
	}

	self, err := os.Executable()
	if err != nil {
		return 2, err
	}
	conns := make([]io.ReadWriteCloser, 0, o.smoke)
	for i := 0; i < o.smoke; i++ {
		c, err := spawn(self, i)
		if err != nil {
			return 2, fmt.Errorf("spawn worker %d: %w", i, err)
		}
		conns = append(conns, c)
	}
	pool := dist.NewPool(conns, dist.PoolOptions{DeadAfter: 2 * time.Second})
	defer pool.Close()

	got, err := pool.Solve(mc, opts)
	if err != nil {
		return 1, fmt.Errorf("distributed solve: %w", err)
	}

	rate, err := got.TotalRateBps(mc)
	if err != nil {
		return 1, fmt.Errorf("merged allocation does not evaluate: %w", err)
	}
	rep := smokeReport{
		Workers:      o.smoke,
		Cells:        len(mc.Cells),
		Status:       got.Status.String(),
		LocalStatus:  want.Status.String(),
		TotalRateBps: rate,
		Stats:        got.Stats,
	}
	rep.OK, rep.Mismatch = sameSolution(want, got)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return 2, err
	}
	if !rep.OK {
		return 1, fmt.Errorf("distributed solve diverged from local: %s", rep.Mismatch)
	}
	return 0, nil
}

// sameSolution compares the distributed merge bit-for-bit against the local
// reference: per-cell assignment, power, and typed status must all match.
func sameSolution(want, got *dist.MultiResult) (bool, string) {
	if got.Status != want.Status {
		return false, fmt.Sprintf("status %v vs local %v", got.Status, want.Status)
	}
	if len(got.Cells) != len(want.Cells) {
		return false, fmt.Sprintf("%d cells vs local %d", len(got.Cells), len(want.Cells))
	}
	for i := range want.Cells {
		w, g := want.Cells[i], got.Cells[i]
		if g.Alloc == nil || w.Alloc == nil {
			return false, fmt.Sprintf("cell %d: missing allocation", i)
		}
		if !reflect.DeepEqual(g.Alloc.UserOf, w.Alloc.UserOf) ||
			!reflect.DeepEqual(g.Alloc.PowerW, w.Alloc.PowerW) {
			return false, fmt.Sprintf("cell %d: allocation bits differ", i)
		}
		if g.Status != w.Status {
			return false, fmt.Sprintf("cell %d: status %v vs local %v", i, g.Status, w.Status)
		}
	}
	return true, ""
}
