package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingExp(t *testing.T) {
	err := run(nil)
	if err == nil || !strings.Contains(err.Error(), "missing -exp") {
		t.Fatalf("want missing -exp error, got %v", err)
	}
}

func TestRunUnknownExp(t *testing.T) {
	err := run([]string{"-exp", "zz"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown experiment error, got %v", err)
	}
}

func TestRunQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment execution in -short mode")
	}
	if err := run([]string{"-exp", "t8", "-quick"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "f3", "-quick", "-json"}); err != nil {
		t.Fatal(err)
	}
}
