package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingExp(t *testing.T) {
	err := run(nil)
	if err == nil || !strings.Contains(err.Error(), "missing -exp") {
		t.Fatalf("want missing -exp error, got %v", err)
	}
}

func TestRunUnknownExp(t *testing.T) {
	err := run([]string{"-exp", "zz"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown experiment error, got %v", err)
	}
}

func TestBaselineRejectsEmptyLabelViaCapture(t *testing.T) {
	if _, err := captureBaseline("", t.TempDir(), 1); err == nil {
		t.Fatal("want error for empty baseline label")
	}
}

func TestBaselineWritesSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping baseline capture in -short mode")
	}
	dir := t.TempDir()
	if err := run([]string{"-baseline", "testlbl", "-benchdir", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_testlbl.json"))
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Label != "testlbl" || b.GOMAXPROCS < 1 {
		t.Fatalf("bad metadata: %+v", b)
	}
	if len(b.Kernels) == 0 {
		t.Fatal("no kernel timings captured")
	}
	for _, k := range b.Kernels {
		if k.Iters <= 0 || k.NsPerOp <= 0 {
			t.Fatalf("kernel %s has empty timing: %+v", k.Name, k)
		}
	}
	if len(b.Exps) != len(experiments.Order()) {
		t.Fatalf("captured %d experiments, want %d", len(b.Exps), len(experiments.Order()))
	}
}

// TestHotRootsAllocFree pins the allochot contract at runtime: every
// exported //rcr:hot root must do zero allocations per op. This runs even
// in -short mode — the probes are microseconds, and a regression here is
// exactly what the lint rule exists to prevent.
func TestHotRootsAllocFree(t *testing.T) {
	probes, err := allocProbes(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) < 4 {
		t.Fatalf("expected probes for all exported hot roots, got %d", len(probes))
	}
	for _, p := range probes {
		if p.AllocsPerOp != 0 {
			t.Errorf("%s: %g allocs/op, want 0", p.Name, p.AllocsPerOp)
		}
	}
}

func TestRunQuickExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping experiment execution in -short mode")
	}
	if err := run([]string{"-exp", "t8", "-quick"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-exp", "f3", "-quick", "-json"}); err != nil {
		t.Fatal(err)
	}
}
