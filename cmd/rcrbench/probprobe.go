package main

// Probe pairs for the prob IR layer (DESIGN.md §10). Each pair times two
// sides of one cache/lowering contract with timePair's interleaved rounds,
// so host-load drift cancels out of the ratio:
//
//	prob_milp_compile / prob_milp_fingerprint — full lowering+compilation
//	  vs the structural fingerprint that lets the cache skip it; caching
//	  pays off only while the second stays well under the first.
//	prob_solve_uncached / prob_solve_cached — repeated bit-identical
//	  same-shape solves, re-lowered every call vs reusing the compiled
//	  backend form verbatim (Result.CacheHit).
//	prob_resolve_cold / prob_resolve_warm — same-shape re-solves with
//	  perturbed coefficients, from scratch vs seeded from the cached
//	  incumbent (Result.WarmStarted).
//	prob_solve_certified / prob_solve_uncertified — the same solve with the
//	  a-posteriori certifier armed (the default) vs disabled; the ratio is
//	  the certificate's overhead on an honest converged solve, which the
//	  robustness budget in ISSUE/DESIGN.md §11 caps at 5%.

import (
	"fmt"

	"repro/internal/guard"
	"repro/internal/prob"
	"repro/internal/rng"
)

// pairProbe is one two-sided comparison; unlike guardPair the sides carry
// their own baseline names.
type pairProbe struct {
	nameA, nameB string
	size         int
	a, b         func() error
}

// rraColumnIR builds a synthetic column-selection MILP shaped like the qos
// RRA model — binary columns, one-per-RB rows, per-user power and min-rate
// rows — sized to solve in well under a millisecond so the probes measure
// registry overhead, not branch-and-bound search. jitter perturbs the rate
// coefficients (content) without touching the structure (shape).
func rraColumnIR(r *rng.Rand, jitter float64) *prob.Problem {
	const (
		nU, nRB, nL = 2, 4, 2
		budgetW     = 0.5
		minRate     = 0.5
	)
	levels := []float64{0.1, 0.2}
	n := nU * nRB * nL
	idx := func(u, rb, l int) int { return (u*nRB+rb)*nL + l }
	ir := &prob.Problem{
		NumVars: n,
		Obj:     prob.Objective{Maximize: true, Lin: make([]float64, n)},
		Hi:      make([]float64, n),
		Integer: make([]int, n),
	}
	for u := 0; u < nU; u++ {
		for rb := 0; rb < nRB; rb++ {
			for l := 0; l < nL; l++ {
				i := idx(u, rb, l)
				ir.Obj.Lin[i] = (1 + float64(l)) * (1 + jitter*r.Float64())
				ir.Hi[i] = 1
				ir.Integer[i] = i
			}
		}
	}
	for rb := 0; rb < nRB; rb++ {
		row := make([]float64, n)
		for u := 0; u < nU; u++ {
			for l := 0; l < nL; l++ {
				row[idx(u, rb, l)] = 1
			}
		}
		ir.Lin = append(ir.Lin, prob.LinCon{Coeffs: row, Sense: prob.LE, RHS: 1})
	}
	for u := 0; u < nU; u++ {
		pRow := make([]float64, n)
		rRow := make([]float64, n)
		for rb := 0; rb < nRB; rb++ {
			for l := 0; l < nL; l++ {
				pRow[idx(u, rb, l)] = levels[l]
				rRow[idx(u, rb, l)] = ir.Obj.Lin[idx(u, rb, l)]
			}
		}
		ir.Lin = append(ir.Lin,
			prob.LinCon{Coeffs: pRow, Sense: prob.LE, RHS: budgetW},
			prob.LinCon{Coeffs: rRow, Sense: prob.GE, RHS: minRate},
		)
	}
	return ir
}

// probPairs builds the IR-layer probe pairs.
func probPairs(seed uint64) []pairProbe {
	fixed := rraColumnIR(rng.New(seed+2), 0)
	n := fixed.NumVars

	solved := func(res *prob.Result, err error) error {
		if err != nil {
			return err
		}
		if res.Status != guard.StatusConverged {
			return fmt.Errorf("probe solve ended %v", res.Status)
		}
		return nil
	}

	// Side A lowers and compiles every call; side B computes the two-level
	// fingerprint — the whole cost of a cache hit's lookup key.
	compileSide := func() error {
		_, err := fixed.MILP()
		return err
	}
	fingerprintSide := func() error {
		fp := fixed.Fingerprint()
		if fp.Shape == 0 && fp.Content == 0 {
			return fmt.Errorf("degenerate fingerprint")
		}
		return nil
	}

	// Bit-identical repeated solves: uncached re-lowers per call, cached
	// reuses the compiled backend form after the first.
	hitCache := prob.NewCache()
	uncachedSide := func() error {
		return solved(prob.Solve(fixed, prob.Options{}))
	}
	cachedSide := func() error {
		return solved(prob.Solve(fixed, prob.Options{Cache: hitCache}))
	}

	// Same-shape re-solves with perturbed coefficients: cold starts BnB from
	// nothing, warm seeds it with the previous (re-verified) incumbent. Both
	// sides draw from identically seeded perturbation streams so they solve
	// the same instance sequence.
	warmCache := prob.NewCache()
	coldRNG := rng.New(seed + 3)
	warmRNG := rng.New(seed + 3)
	coldSide := func() error {
		return solved(prob.Solve(rraColumnIR(coldRNG, 0.01), prob.Options{}))
	}
	warmSide := func() error {
		return solved(prob.Solve(rraColumnIR(warmRNG, 0.01), prob.Options{Cache: warmCache}))
	}

	// Certifier overhead on a clean converged solve: side A runs the default
	// armed certificate (feasibility residuals + objective/gap/bound checks),
	// side B disables it — the one legitimate use of CertConfig.Disable.
	certifiedSide := func() error {
		return solved(prob.Solve(fixed, prob.Options{}))
	}
	uncertifiedSide := func() error {
		return solved(prob.Solve(fixed, prob.Options{Cert: prob.CertConfig{Disable: true}}))
	}

	return []pairProbe{
		{"prob_milp_compile", "prob_milp_fingerprint", n, compileSide, fingerprintSide},
		{"prob_solve_uncached", "prob_solve_cached", n, uncachedSide, cachedSide},
		{"prob_resolve_cold", "prob_resolve_warm", n, coldSide, warmSide},
		{"prob_solve_certified", "prob_solve_uncertified", n, certifiedSide, uncertifiedSide},
	}
}
