package main

// Hot-root allocation probes: every exported //rcr:hot root is driven
// through testing.AllocsPerRun and must report exactly 0 allocs/op. This is
// the runtime side of the rcrlint allochot contract — the static rule proves
// no allocation site is *reachable* from a hot root, `rcrlint -escapes`
// cross-checks the compiler's escape analysis, and this probe pins the
// observable end state. Unexported hot roots (lp.pivot, stft.analyzeFrame)
// cannot be called from here; they are covered by the other two layers.
//
// captureBaseline records the measured allocs/op in the baseline file and
// fails the capture outright when a probe is nonzero, so a regression cannot
// be silently committed as the new baseline.

import (
	"fmt"
	"testing"

	"repro/internal/fft"
	"repro/internal/mat"
	"repro/internal/prob"
	"repro/internal/rng"
	"repro/internal/wire"
)

// AllocProbe is one hot-root allocs/op measurement in a baseline file.
type AllocProbe struct {
	Name        string  `json:"name"`
	Size        int     `json:"size"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// allocProbes measures allocs/op for each exported hot root and returns an
// error naming any probe that allocates.
func allocProbes(seed uint64) ([]AllocProbe, error) {
	r := rng.New(seed + 2)
	const n = 512
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = r.Norm()
		b[i] = r.Norm()
	}
	m := mat.New(n, n)
	for i := range m.Data {
		m.Data[i] = r.Norm()
	}
	out := make([]float64, n)

	// Plan fixtures: the factorization plans promise allocation-free
	// Factor/SolveInto/Decompose/ProjectPSDInto once constructed. The size
	// keeps ProjectPSDInto's internal GEMM within one par chunk so the
	// measurement pins the kernels, not the fan-out machinery.
	const pn = 32
	spd, err := spdMatrix(r, pn)
	if err != nil {
		return nil, err
	}
	sym := randSym(r, pn)
	rhs := randVec(r, pn)
	sol := make([]float64, pn)
	cholPlan := mat.NewCholPlan(pn)
	ldlPlan := mat.NewLDLPlan(pn)
	luPlan := mat.NewLUPlan(pn)
	eigPlan := mat.NewEigPlan(pn)
	psd := mat.New(pn, pn)

	const fn = 1024
	plan := fft.NewPlan(fn)
	buf := make([]complex128, fn)
	for i := range buf {
		buf[i] = complex(r.Norm(), r.Norm())
	}

	// Wire codec steady state: encode into a reused writer and decode into a
	// reused problem must both be allocation-free (the per-entry path the
	// persistent cache's Snapshot/Load hot loops run). Not //rcr:hot roots —
	// this is the codec's own 0-alloc contract from DESIGN.md §15.
	wireProblem := rraColumnIR(r, 0)
	wireW := wire.GetWriter()
	defer wire.PutWriter(wireW)
	wireProblem.EncodeWire(wireW)
	wireFrame := append([]byte(nil), wireW.Bytes()...)
	wireInto := &prob.Problem{}
	if _, err := prob.DecodeProblem(wireFrame, wireInto); err != nil {
		return nil, err
	}

	sink := 0.0
	probes := []struct {
		name string
		size int
		fn   func()
	}{
		{"mat.VecDot", n, func() { sink += mat.VecDot(a, b) }},
		{"mat.VecNorm", n, func() { sink += mat.VecNorm(a) }},
		{"mat.Matrix.MulVecInto", n, func() { m.MulVecInto(out, a) }},
		{"mat.CholPlan.Factor+SolveInto", pn, func() {
			if cholPlan.Factor(spd) != nil {
				panic("alloc probe: cholesky factor failed")
			}
			cholPlan.SolveInto(sol, rhs)
		}},
		{"mat.LDLPlan.Factor+SolveInto", pn, func() {
			if ldlPlan.Factor(spd) != nil {
				panic("alloc probe: ldl factor failed")
			}
			ldlPlan.SolveInto(sol, rhs)
		}},
		{"mat.LUPlan.Factor+SolveInto", pn, func() {
			if luPlan.Factor(spd) != nil {
				panic("alloc probe: lu factor failed")
			}
			luPlan.SolveInto(sol, rhs)
		}},
		{"mat.EigPlan.Decompose", pn, func() {
			if eigPlan.Decompose(sym) != nil {
				panic("alloc probe: eig decompose failed")
			}
		}},
		{"mat.EigPlan.ProjectPSDInto", pn, func() {
			if eigPlan.ProjectPSDInto(psd, sym) != nil {
				panic("alloc probe: psd projection failed")
			}
		}},
		{"fft.Plan.Do", fn, func() { plan.Do(buf, false); plan.Do(buf, true) }},
		{"wire.EncodeWire", wireProblem.NumVars, func() {
			wireW.Reset()
			wireProblem.EncodeWire(wireW)
		}},
		{"wire.DecodeProblem", wireProblem.NumVars, func() {
			if _, err := prob.DecodeProblem(wireFrame, wireInto); err != nil {
				panic("alloc probe: wire decode failed")
			}
		}},
	}

	var res []AllocProbe
	var bad []string
	for _, p := range probes {
		allocs := testing.AllocsPerRun(100, p.fn)
		res = append(res, AllocProbe{Name: p.name, Size: p.size, AllocsPerOp: allocs})
		if allocs != 0 {
			bad = append(bad, fmt.Sprintf("%s=%g", p.name, allocs))
		}
	}
	_ = sink
	if len(bad) > 0 {
		return res, fmt.Errorf("hot roots must be allocation-free, got allocs/op: %v", bad)
	}
	return res, nil
}
