package main

// Wire codec probes (DESIGN.md §15). Two single probes time the versioned
// binary codec itself on the qos-shaped MILP the cache persists in practice:
//
//	wire_encode — Problem → frame bytes into a reused wire.Writer
//	wire_decode — frame bytes → Problem decoded into a reused instance
//	  (the steady-state path Load runs per entry; the alloc probes pin
//	  both at 0 allocs/op)
//
// The cache_cold_solve / cache_warm_restart pair is the end-to-end payoff
// claim behind qosd -cache-dir: one side solves a burst of requests with no
// cache at all, the other restores a snapshot from disk (decode, re-lower,
// re-certify) and serves the same burst through it. The pair self-gates —
// a warm restart that fails to beat cold solves fails the baseline capture
// and `rcrbench -check` outright, the same contract as the qosd_urllc_p99
// latency gate — so the persistence layer cannot quietly decay into
// overhead.

import (
	"fmt"
	"os"

	"repro/internal/guard"
	"repro/internal/prob"
	"repro/internal/rng"
	"repro/internal/wire"
)

// wireRestartSolves is the burst each side of the restart pair serves: the
// snapshot amortizes its load cost (decode + re-lower + recertify, ~100µs)
// over the burst, matching how a restarted qosd immediately sees repeat
// traffic. At 4 solves the load cost roughly cancels the cached-solve win on
// this host, so the pair uses a burst deep enough for the payoff to clear
// run-to-run noise.
const wireRestartSolves = 16

// wireProbeSeries builds the codec probes and the restart pair. The pair's
// warm side loads the snapshot under dir, which cleanup removes.
func wireProbeSeries(seed uint64) (probes []probe, pair pairProbe, cleanup func(), err error) {
	fixed := rraColumnIR(rng.New(seed+2), 0)
	n := fixed.NumVars

	// The writer stays checked out for the probe's lifetime: the encode
	// closure reuses it every call, so it must not return to the pool here.
	w := wire.GetWriter()
	cleanup = func() { wire.PutWriter(w) }
	fixed.EncodeWire(w)
	frame := append([]byte(nil), w.Bytes()...)
	into := &prob.Problem{}
	if _, err := prob.DecodeProblem(frame, into); err != nil {
		return nil, pairProbe{}, cleanup, err
	}

	probes = []probe{
		{"wire_encode", n, func() error {
			w.Reset()
			fixed.EncodeWire(w)
			return nil
		}},
		{"wire_decode", n, func() error {
			_, err := prob.DecodeProblem(frame, into)
			return err
		}},
	}

	// The fixed snapshot the warm side restarts from: solve once, dump.
	dir, err := os.MkdirTemp("", "rcrbench-wire-")
	if err != nil {
		return nil, pairProbe{}, cleanup, err
	}
	releaseWriter := cleanup
	cleanup = func() { os.RemoveAll(dir); releaseWriter() }
	seedCache := prob.NewCache()
	solved := func(res *prob.Result, err error) error {
		if err != nil {
			return err
		}
		if res.Status != guard.StatusConverged {
			return fmt.Errorf("wire probe solve ended %v", res.Status)
		}
		return nil
	}
	if err := solved(prob.Solve(fixed, prob.Options{Cache: seedCache})); err != nil {
		return nil, pairProbe{}, cleanup, err
	}
	if _, err := seedCache.Snapshot(dir); err != nil {
		return nil, pairProbe{}, cleanup, err
	}

	coldSide := func() error {
		for i := 0; i < wireRestartSolves; i++ {
			if err := solved(prob.Solve(fixed, prob.Options{})); err != nil {
				return err
			}
		}
		return nil
	}
	warmSide := func() error {
		c := prob.NewCache()
		st, err := c.Load(dir)
		if err != nil {
			return err
		}
		if st.Recertified != 1 {
			return fmt.Errorf("restart loaded %+v, want 1 recertified incumbent", st)
		}
		for i := 0; i < wireRestartSolves; i++ {
			if err := solved(prob.Solve(fixed, prob.Options{Cache: c})); err != nil {
				return err
			}
		}
		return nil
	}
	pair = pairProbe{"cache_cold_solve", "cache_warm_restart", n, coldSide, warmSide}
	return probes, pair, cleanup, nil
}

// runWireRestartPair times the restart pair with interleaved rounds and
// enforces the self-gate: a restarted cache must beat cold solves on the
// same burst.
func runWireRestartPair(pair pairProbe) (iters int, nsCold, nsWarm float64, err error) {
	iters, nsCold, nsWarm = timePair(pair.a, pair.b)
	if iters == 0 {
		return 0, 0, 0, fmt.Errorf("wire restart pair failed to run")
	}
	if nsWarm >= nsCold {
		return 0, 0, 0, fmt.Errorf("warm restart does not pay: %s %.0f ns/op vs %s %.0f ns/op",
			pair.nameB, nsWarm, pair.nameA, nsCold)
	}
	return iters, nsCold, nsWarm, nil
}
