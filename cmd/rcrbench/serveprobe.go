package main

// Service-level probes for the qosd allocation service (internal/serve,
// DESIGN.md §14). Unlike the kernel probes these time the full request path
// — admission, queueing, batching, ladder, certification — because the
// service's robustness promises are about request latency, not solver FLOPs:
//
//	qosd_throughput — a coalesced burst of mMTC requests through the worker
//	  pool under the default per-batch budget; ns/op is the wall cost of one
//	  burst, so sustained batched throughput is burstSize / (ns_per_op · 1e-9)
//	  solves per second.
//	qosd_urllc_p99 — single URLLC requests against a deliberately heavy
//	  instance under the default 10 ms deadline budget. Without the watchdog
//	  the exact rung would run this instance far past the deadline; the probe
//	  fails itself when its own p99 exceeds 4x the budget, proving tail
//	  latency is bounded by the deadline plus fallback time. (The gate uses
//	  the service's log₂ histogram, so the 4x slack absorbs one bucket of
//	  granularity and shared-host noise; a broken watchdog overshoots it by
//	  an order of magnitude.)
//	qosd_shed_latency — the typed-shed fast path under a closed admission
//	  gate; ns/op is the cost of telling one client "no" during overload,
//	  which must stay far below a solve so shedding actually sheds load.
//
// The servers live for the process's lifetime (a bench run), so the probe
// closures pay no setup cost per call.

import (
	"fmt"

	"repro/internal/qos"
	"repro/internal/serve"
)

// serveProbeSeries builds the qosd probe set.
func serveProbeSeries(seed uint64) ([]probe, error) {
	small, err := qos.GenerateProblem(1, 1, 1, 5, seed)
	if err != nil {
		return nil, err
	}
	// Heavy enough that an unbudgeted exact solve runs well past the URLLC
	// deadline — the p99 gate below is only meaningful if the watchdog has
	// something to cut short.
	heavy, err := qos.GenerateProblem(2, 1, 2, 8, seed)
	if err != nil {
		return nil, err
	}

	const burst = 8
	mmtcSrv := serve.New(serve.Config{})
	throughput := func() error {
		chans := make([]<-chan serve.Response, burst)
		for i := 0; i < burst; i++ {
			chans[i] = mmtcSrv.Submit(serve.Request{Class: qos.ClassMMTC, Problem: small, Seed: seed + uint64(i)})
		}
		for i, ch := range chans {
			resp := <-ch
			if resp.Outcome != serve.OutcomeServed && resp.Outcome != serve.OutcomeDegraded {
				return fmt.Errorf("throughput burst member %d: outcome %v (%v)", i, resp.Outcome, resp.Err)
			}
		}
		return nil
	}

	urllcSrv := serve.New(serve.Config{})
	deadline := serve.DefaultBudgets()[qos.ClassURLLC].Deadline
	urllcP99 := func() error {
		resp := urllcSrv.Do(serve.Request{Class: qos.ClassURLLC, Problem: heavy, Seed: seed})
		if resp.Alloc == nil {
			return fmt.Errorf("URLLC request lost its allocation: outcome %v (%v)", resp.Outcome, resp.Err)
		}
		// Stats() costs microseconds against a ~10 ms solve, so reading the
		// service's own histogram every call does not distort the timing.
		if st := urllcSrv.Stats(); st.Latency[qos.ClassURLLC].Count >= 16 {
			if p99 := st.Latency[qos.ClassURLLC].P99; p99 > 4*deadline {
				return fmt.Errorf("URLLC p99 %v exceeds 4x the %v deadline budget — watchdog not bounding tail latency", p99, deadline)
			}
		}
		return nil
	}

	// An admission gate that opened once and will not refill within any
	// realistic probe run: after one primer solve, every request sheds.
	shedSrv := serve.New(serve.Config{AdmitRate: 1e-12, AdmitBurst: 1})
	if resp := shedSrv.Do(serve.Request{Class: qos.ClassEMBB, Problem: small, Seed: seed}); resp.Outcome == serve.OutcomeShed {
		return nil, fmt.Errorf("shed probe primer was shed; bucket should start full")
	}
	shed := func() error {
		resp := shedSrv.Do(serve.Request{Class: qos.ClassEMBB, Problem: small, Seed: seed})
		if resp.Outcome != serve.OutcomeShed {
			return fmt.Errorf("closed admission gate let a request through: %v", resp.Outcome)
		}
		return nil
	}

	return []probe{
		{"qosd_throughput", burst, throughput},
		{"qosd_urllc_p99", len(heavy.Users), urllcP99},
		{"qosd_shed_latency", 1, shed},
	}, nil
}
