// Command rcrbench regenerates the paper's figures and quantitative claims
// (see DESIGN.md §4 for the experiment index). Each experiment prints the
// rows/series the paper reports, produced by this repository's own
// implementations.
//
// Usage:
//
//	rcrbench -exp f3            # one experiment
//	rcrbench -exp all           # everything (slow)
//	rcrbench -exp t1 -quick     # reduced budget
//	rcrbench -list
//	rcrbench -baseline pre      # write BENCH_pre.json perf snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rcrbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rcrbench", flag.ContinueOnError)
	exp := fs.String("exp", "", "experiment id (f1..f3, t1..t8) or 'all'")
	seed := fs.Uint64("seed", 1, "experiment seed")
	quick := fs.Bool("quick", false, "reduced budgets")
	list := fs.Bool("list", false, "list experiments")
	asJSON := fs.Bool("json", false, "emit JSON instead of tables")
	baseline := fs.String("baseline", "", "capture a perf baseline, writing BENCH_<label>.json")
	benchDir := fs.String("benchdir", ".", "directory for -baseline output")
	check := fs.String("check", "", "re-time the mat probes against a BENCH_*.json baseline; fail on regression")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *check != "" {
		return checkBaseline(*check, *seed)
	}
	if *baseline != "" {
		path, err := captureBaseline(*baseline, *benchDir, *seed)
		if err != nil {
			return fmt.Errorf("baseline %q: %w", *baseline, err)
		}
		fmt.Printf("baseline written to %s\n", path)
		return nil
	}
	reg := experiments.Registry()
	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, id := range experiments.Order() {
			fmt.Printf("  %s\n", id)
		}
		if *exp == "" && !*list {
			return fmt.Errorf("missing -exp")
		}
		return nil
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Order()
	}
	for _, id := range ids {
		runner, ok := reg[strings.ToLower(id)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		start := time.Now()
		table, err := runner(*seed, *quick)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if *asJSON {
			if err := table.WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else {
			table.Fprint(os.Stdout)
			fmt.Printf("(%s in %s)\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}
