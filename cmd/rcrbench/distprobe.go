package main

// Distributed solve probes (DESIGN.md §16). The dist_local_solve /
// dist_fanout_4w pair is the payoff-and-correctness claim behind the
// coordinator/worker fan-out: one side runs the multi-cell solve in
// process, the other fans the same instance out over four in-process pipe
// workers. The fan-out side re-checks bit-identity against the local
// reference on every iteration, so the pair self-gates on correctness —
// a merge that drifts from the local bits fails the baseline capture and
// `rcrbench -check` outright, the same contract as the cache restart pair.
//
// The speed side of the gate is core-aware. Fan-out buys wall time only
// when cells can actually solve concurrently, so with GOMAXPROCS > 1 the
// fan-out must beat the local solve; on a single-core host the claim
// degrades to bounded coordination overhead — dispatch, transport framing,
// recertification, and merge may cost at most distOverheadFactor over the
// local solve.
//
// dist_dead_worker_recovery times the survival ladder end to end: a fresh
// two-worker pool whose first worker dies after one job, solved to a
// certified answer through re-dispatch and local fallback. It rides the
// ordinary checkFactor gate, keeping recovery from quietly growing a stall.

import (
	"fmt"
	"io"
	"net"
	"reflect"
	"runtime"
	"time"

	"repro/internal/dist"
	"repro/internal/guard"
)

// distOverheadFactor bounds fan-out coordination overhead on hosts where
// concurrency cannot pay (GOMAXPROCS == 1): the fan-out side may cost at
// most this multiple of the local solve.
const distOverheadFactor = 1.5

// distPool spawns n in-process pipe workers and wraps them in a pool, the
// same transport topology the dist tests and the rcrworker smoke use.
func distPool(n int, wo func(i int) dist.WorkerOptions, po dist.PoolOptions) *dist.Pool {
	conns := make([]io.ReadWriteCloser, n)
	for i := 0; i < n; i++ {
		c1, c2 := net.Pipe()
		conns[i] = c1
		go func(c net.Conn, o dist.WorkerOptions) {
			defer c.Close()
			_ = dist.ServeWorker(c, c, o)
		}(c2, wo(i))
	}
	return dist.NewPool(conns, po)
}

// distSameBits reports whether two multi-cell results carry identical
// per-cell allocations and typed statuses.
func distSameBits(want, got *dist.MultiResult) error {
	if got.Status != want.Status || len(got.Cells) != len(want.Cells) {
		return fmt.Errorf("merged status/shape diverged: %v/%d vs %v/%d",
			got.Status, len(got.Cells), want.Status, len(want.Cells))
	}
	for i := range want.Cells {
		w, g := want.Cells[i], got.Cells[i]
		if g.Alloc == nil || g.Status != w.Status ||
			!reflect.DeepEqual(g.Alloc.UserOf, w.Alloc.UserOf) ||
			!reflect.DeepEqual(g.Alloc.PowerW, w.Alloc.PowerW) {
			return fmt.Errorf("cell %d diverged from the local reference", i)
		}
	}
	return nil
}

// distProbeSeries builds the fan-out pair and the recovery probe. The
// four-worker pool stays up for the pair's lifetime (workers are reused
// across iterations, as a long-lived deployment would); cleanup tears it
// down.
func distProbeSeries(seed uint64) (probes []probe, pair pairProbe, cleanup func(), err error) {
	mc, err := dist.GenerateMultiCell(3, 1, 1, 1, 5, 1.0, seed)
	if err != nil {
		return nil, pairProbe{}, func() {}, err
	}
	opts := dist.Options{Seed: seed}

	want, err := dist.SolveLocal(mc, opts)
	if err != nil {
		return nil, pairProbe{}, func() {}, err
	}
	if want.Status != guard.StatusConverged {
		return nil, pairProbe{}, func() {}, fmt.Errorf("dist probe reference did not certify: %v", want.Status)
	}

	pool := distPool(4, func(i int) dist.WorkerOptions {
		return dist.WorkerOptions{Name: fmt.Sprintf("bench-%d", i), HeartbeatEvery: 50 * time.Millisecond}
	}, dist.PoolOptions{DeadAfter: 5 * time.Second})
	cleanup = pool.Close

	localSide := func() error {
		got, err := dist.SolveLocal(mc, opts)
		if err != nil {
			return err
		}
		return distSameBits(want, got)
	}
	fanoutSide := func() error {
		got, err := pool.Solve(mc, opts)
		if err != nil {
			return err
		}
		if err := distSameBits(want, got); err != nil {
			return err
		}
		if got.Stats.RemoteAccepted == 0 {
			return fmt.Errorf("fan-out accepted no remote results — the pair timed the fallback ladder, not the fan-out")
		}
		return nil
	}
	pair = pairProbe{"dist_local_solve", "dist_fanout_4w", len(mc.Cells), localSide, fanoutSide}

	probes = []probe{
		{"dist_dead_worker_recovery", len(mc.Cells), func() error {
			p := distPool(2, func(i int) dist.WorkerOptions {
				if i == 0 {
					return dist.WorkerOptions{DieAfterJobs: 1}
				}
				return dist.WorkerOptions{HeartbeatEvery: 20 * time.Millisecond}
			}, dist.PoolOptions{})
			defer p.Close()
			got, err := p.Solve(mc, opts)
			if err != nil {
				return err
			}
			return distSameBits(want, got)
		}},
	}
	return probes, pair, cleanup, nil
}

// runDistFanoutPair times the pair with interleaved rounds and enforces the
// core-aware self-gate described at the top of this file.
func runDistFanoutPair(pair pairProbe) (iters int, nsLocal, nsFanout float64, err error) {
	iters, nsLocal, nsFanout = timePair(pair.a, pair.b)
	if iters == 0 {
		return 0, 0, 0, fmt.Errorf("dist fan-out pair failed to run")
	}
	if runtime.GOMAXPROCS(0) > 1 {
		if nsFanout >= nsLocal {
			return 0, 0, 0, fmt.Errorf("fan-out does not pay at GOMAXPROCS=%d: %s %.0f ns/op vs %s %.0f ns/op",
				runtime.GOMAXPROCS(0), pair.nameB, nsFanout, pair.nameA, nsLocal)
		}
	} else if nsFanout > nsLocal*distOverheadFactor {
		return 0, 0, 0, fmt.Errorf("fan-out coordination overhead exceeds %.1fx on a single core: %s %.0f ns/op vs %s %.0f ns/op",
			distOverheadFactor, pair.nameB, nsFanout, pair.nameA, nsLocal)
	}
	return iters, nsLocal, nsFanout, nil
}
