package main

// Perf regression gate: `rcrbench -check BENCH_<label>.json` re-times the
// mat/qp/sdp probe series against the kernel timings recorded in a committed
// baseline and fails when any probe regresses past the noise allowance. This
// is what keeps a later PR from silently giving back the plan-kernel
// speedups: ci.sh runs it against the committed BENCH_post.json, so a
// regression has to either fix itself or recapture the baseline in a
// reviewable diff.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// checkFactor is the allowed slowdown before -check fails. Shared hosts
// show 30-50% swings under load — a compile sharing the host pushes single
// probes near 2x — so the gate is deliberately loose: it cannot rank
// commits, but losing a plan-kernel win (3x and up) still clears the bar
// by a wide margin.
const checkFactor = 2.5

// checkBaseline re-times the mat probe series and compares each probe to
// the baseline entry with the same name and size. Probes absent from the
// baseline are reported as new and skipped; alloc probes are re-measured
// and must still be zero.
func checkBaseline(path string, seed uint64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	ref := make(map[string]float64, len(base.Kernels))
	for _, k := range base.Kernels {
		ref[fmt.Sprintf("%s/%d", k.Name, k.Size)] = k.NsPerOp
	}

	probes, err := matProbes(seed)
	if err != nil {
		return err
	}
	// The qosd service probes ride the same gate: a regression in request
	// latency (or a tripped URLLC p99 deadline gate, which fails the probe
	// outright) fails -check just like a kernel slowdown.
	svc, err := serveProbeSeries(seed)
	if err != nil {
		return err
	}
	probes = append(probes, svc...)
	// The wire codec probes ride it too; the cold/warm restart pair is
	// handled separately below so its self-gate (warm must beat cold) runs
	// with interleaved timing.
	wireProbes, restartPair, wireCleanup, err := wireProbeSeries(seed)
	if err != nil {
		return err
	}
	defer wireCleanup()
	probes = append(probes, wireProbes...)
	// The distributed-solve probes ride it as well; the local/fan-out pair is
	// handled separately below so its core-aware self-gate (bit-identity
	// always, speedup where cores exist) runs with interleaved timing.
	distProbes, fanoutPair, distCleanup, err := distProbeSeries(seed)
	if err != nil {
		return err
	}
	defer distCleanup()
	probes = append(probes, distProbes...)
	var regressions []string
	for _, p := range probes {
		key := fmt.Sprintf("%s/%d", p.name, p.size)
		want, ok := ref[key]
		if !ok || want <= 0 {
			fmt.Printf("check %-24s not in baseline, skipped\n", key)
			continue
		}
		_, got := timeProbe(p.fn)
		if got == 0 {
			return fmt.Errorf("probe %s failed to run", key)
		}
		ratio := got / want
		status := "ok"
		if ratio > checkFactor {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s %.0fns -> %.0fns (%.2fx)", key, want, got, ratio))
		}
		fmt.Printf("check %-24s %12.0f ns/op  baseline %12.0f  (%.2fx) %s\n", key, got, want, ratio, status)
	}

	iters, nsCold, nsWarm, err := runWireRestartPair(restartPair)
	if err != nil {
		regressions = append(regressions, err.Error())
	} else if iters > 0 {
		for _, side := range []struct {
			name string
			got  float64
		}{{restartPair.nameA, nsCold}, {restartPair.nameB, nsWarm}} {
			key := fmt.Sprintf("%s/%d", side.name, restartPair.size)
			want, ok := ref[key]
			if !ok || want <= 0 {
				fmt.Printf("check %-24s not in baseline, skipped\n", key)
				continue
			}
			ratio := side.got / want
			status := "ok"
			if ratio > checkFactor {
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s %.0fns -> %.0fns (%.2fx)", key, want, side.got, ratio))
			}
			fmt.Printf("check %-24s %12.0f ns/op  baseline %12.0f  (%.2fx) %s\n", key, side.got, want, ratio, status)
		}
	}

	fanIters, nsLocal, nsFanout, err := runDistFanoutPair(fanoutPair)
	if err != nil {
		regressions = append(regressions, err.Error())
	} else if fanIters > 0 {
		for _, side := range []struct {
			name string
			got  float64
		}{{fanoutPair.nameA, nsLocal}, {fanoutPair.nameB, nsFanout}} {
			key := fmt.Sprintf("%s/%d", side.name, fanoutPair.size)
			want, ok := ref[key]
			if !ok || want <= 0 {
				fmt.Printf("check %-24s not in baseline, skipped\n", key)
				continue
			}
			ratio := side.got / want
			status := "ok"
			if ratio > checkFactor {
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s %.0fns -> %.0fns (%.2fx)", key, want, side.got, ratio))
			}
			fmt.Printf("check %-24s %12.0f ns/op  baseline %12.0f  (%.2fx) %s\n", key, side.got, want, ratio, status)
		}
	}

	allocs, err := allocProbes(seed)
	if err != nil {
		return err
	}
	for _, a := range allocs {
		if a.AllocsPerOp != 0 {
			regressions = append(regressions, fmt.Sprintf("%s allocates %g/op", a.Name, a.AllocsPerOp))
		}
	}

	if len(regressions) > 0 {
		return fmt.Errorf("perf regression vs %s (allowance %.1fx):\n  %s",
			path, checkFactor, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("check: all probes within %.1fx of %s\n", checkFactor, path)
	return nil
}
