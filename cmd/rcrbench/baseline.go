package main

// Baseline capture: `rcrbench -baseline <label>` writes BENCH_<label>.json,
// a machine-readable performance snapshot of the numeric kernel's hot paths
// plus quick-mode wall times for every registered experiment. Committing the
// files produced before and after a performance PR records the repository's
// perf trajectory next to the code that produced it (see DESIGN.md §8).
//
// kernelProbes deliberately uses only long-stable API (fft.FFT,
// stft.Transform, Matrix.Mul, pso.Minimize), so those timings are
// comparable across any pair of commits. The matProbes series instead
// tracks the factorization plans (CholPlan, EigPlan, mat.BatchSolve) — the
// interface the solver inner loops hold — timing the same logical
// operations the pre-plan wrappers performed. serveProbeSeries times the
// qosd service request path end to end (see serveprobe.go).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/fft"
	"repro/internal/guard"
	"repro/internal/mat"
	"repro/internal/opt"
	"repro/internal/pso"
	"repro/internal/rng"
	"repro/internal/sdp"
	"repro/internal/stft"
)

// Baseline is the schema of a BENCH_<label>.json file.
type Baseline struct {
	Label      string          `json:"label"`
	CapturedAt string          `json:"captured_at"` // RFC 3339, UTC
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	RCRWorkers string          `json:"rcr_workers"` // RCR_WORKERS env, "" = unset
	Kernels    []KernelTiming  `json:"kernels"`
	HotAllocs  []AllocProbe    `json:"hot_allocs"` // exported //rcr:hot roots, must all be 0
	Exps       []ExperimentRun `json:"experiments"`
}

// KernelTiming is one micro-benchmark result.
type KernelTiming struct {
	Name    string  `json:"name"`
	Size    int     `json:"size"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// ExperimentRun is one quick-mode experiment wall time.
type ExperimentRun struct {
	ID   string  `json:"id"`
	Ms   float64 `json:"ms"`
	Rows int     `json:"rows"`
}

// captureBaseline measures every probe and experiment and writes the
// baseline file into dir.
func captureBaseline(label, dir string, seed uint64) (string, error) {
	if label == "" {
		return "", fmt.Errorf("baseline label must be non-empty")
	}
	b := &Baseline{
		Label:      label,
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		RCRWorkers: os.Getenv("RCR_WORKERS"),
	}
	kernels, err := kernelProbes(seed)
	if err != nil {
		return "", err
	}
	matKernels, err := matProbes(seed)
	if err != nil {
		return "", err
	}
	kernels = append(kernels, matKernels...)
	for _, p := range kernels {
		iters, ns := timeProbe(p.fn)
		b.Kernels = append(b.Kernels, KernelTiming{Name: p.name, Size: p.size, Iters: iters, NsPerOp: ns})
	}
	for _, gp := range guardPairs(seed) {
		iters, nsU, nsG := timePair(gp.unguarded, gp.guarded)
		b.Kernels = append(b.Kernels,
			KernelTiming{Name: gp.name + "_unguarded", Size: gp.size, Iters: iters, NsPerOp: nsU},
			KernelTiming{Name: gp.name + "_guarded", Size: gp.size, Iters: iters, NsPerOp: nsG})
	}
	hotAllocs, err := allocProbes(seed)
	b.HotAllocs = hotAllocs
	if err != nil {
		return "", err
	}
	for _, pp := range probPairs(seed) {
		iters, nsA, nsB := timePair(pp.a, pp.b)
		b.Kernels = append(b.Kernels,
			KernelTiming{Name: pp.nameA, Size: pp.size, Iters: iters, NsPerOp: nsA},
			KernelTiming{Name: pp.nameB, Size: pp.size, Iters: iters, NsPerOp: nsB})
	}
	svc, err := serveProbeSeries(seed)
	if err != nil {
		return "", err
	}
	for _, p := range svc {
		iters, ns := timeProbe(p.fn)
		if iters == 0 {
			return "", fmt.Errorf("serve probe %s failed (latency gate or request failure)", p.name)
		}
		b.Kernels = append(b.Kernels, KernelTiming{Name: p.name, Size: p.size, Iters: iters, NsPerOp: ns})
	}
	wireProbes, restartPair, wireCleanup, err := wireProbeSeries(seed)
	if err != nil {
		return "", err
	}
	defer wireCleanup()
	for _, p := range wireProbes {
		iters, ns := timeProbe(p.fn)
		if iters == 0 {
			return "", fmt.Errorf("wire probe %s failed", p.name)
		}
		b.Kernels = append(b.Kernels, KernelTiming{Name: p.name, Size: p.size, Iters: iters, NsPerOp: ns})
	}
	iters, nsCold, nsWarm, err := runWireRestartPair(restartPair)
	if err != nil {
		// The self-gate: a snapshot restart that loses to cold solves is a
		// defect, not a data point — refuse to commit it as the baseline.
		return "", err
	}
	b.Kernels = append(b.Kernels,
		KernelTiming{Name: restartPair.nameA, Size: restartPair.size, Iters: iters, NsPerOp: nsCold},
		KernelTiming{Name: restartPair.nameB, Size: restartPair.size, Iters: iters, NsPerOp: nsWarm})
	distProbes, fanoutPair, distCleanup, err := distProbeSeries(seed)
	if err != nil {
		return "", err
	}
	defer distCleanup()
	for _, p := range distProbes {
		iters, ns := timeProbe(p.fn)
		if iters == 0 {
			return "", fmt.Errorf("dist probe %s failed", p.name)
		}
		b.Kernels = append(b.Kernels, KernelTiming{Name: p.name, Size: p.size, Iters: iters, NsPerOp: ns})
	}
	iters, nsLocal, nsFanout, err := runDistFanoutPair(fanoutPair)
	if err != nil {
		// Same contract as the restart pair: a fan-out that diverges from the
		// local bits or fails its speed gate is a defect, not a data point.
		return "", err
	}
	b.Kernels = append(b.Kernels,
		KernelTiming{Name: fanoutPair.nameA, Size: fanoutPair.size, Iters: iters, NsPerOp: nsLocal},
		KernelTiming{Name: fanoutPair.nameB, Size: fanoutPair.size, Iters: iters, NsPerOp: nsFanout})
	reg := experiments.Registry()
	for _, id := range experiments.Order() {
		start := time.Now()
		table, err := reg[id](seed, true)
		if err != nil {
			return "", fmt.Errorf("experiment %s: %w", id, err)
		}
		b.Exps = append(b.Exps, ExperimentRun{
			ID:   id,
			Ms:   float64(time.Since(start).Microseconds()) / 1e3,
			Rows: len(table.Rows),
		})
	}
	path := filepath.Join(dir, "BENCH_"+label+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

type probe struct {
	name string
	size int
	fn   func() error
}

// kernelProbes builds the closed set of hot-path micro-benchmarks. Inputs
// are deterministic (seeded); only the timing varies between runs.
func kernelProbes(seed uint64) ([]probe, error) {
	r := rng.New(seed)
	sig4096 := make([]complex128, 4096)
	for i := range sig4096 {
		sig4096[i] = complex(r.Norm(), r.Norm())
	}
	sig4095 := sig4096[:4095]

	audio := make([]float64, 16384)
	for i := range audio {
		audio[i] = r.Norm()
	}
	stftCfg := stft.DefaultConfig()

	const mm = 192
	a, bm := mat.New(mm, mm), mat.New(mm, mm)
	for i := range a.Data {
		a.Data[i] = r.Norm()
		bm.Data[i] = r.Norm()
	}
	const mv = 512
	mvec := mat.New(mv, mv)
	for i := range mvec.Data {
		mvec.Data[i] = r.Norm()
	}
	x := make([]float64, mv)
	for i := range x {
		x[i] = r.Norm()
	}

	sphere := func(v []float64) float64 {
		var s float64
		for _, u := range v {
			s += u * u
		}
		return s
	}
	psoDims := make([]pso.Dim, 6)
	for i := range psoDims {
		psoDims[i] = pso.Dim{Lo: -5, Hi: 5}
	}

	probes := []probe{
		{"fft_pow2_repeated", 4096, func() error {
			_ = fft.FFT(sig4096)
			return nil
		}},
		{"fft_bluestein_repeated", 4095, func() error {
			_ = fft.FFT(sig4095)
			return nil
		}},
		{"stft_transform", len(audio), func() error {
			_, err := stft.Transform(audio, stftCfg)
			return err
		}},
		{"mat_mul", mm, func() error {
			_, err := a.Mul(bm)
			return err
		}},
		{"mat_mulvec", mv, func() error {
			_, err := mvec.MulVec(x)
			return err
		}},
		{"pso_sphere", 6, func() error {
			//lint:ignore dropstatus timing probe: only wall-clock matters, the iterate is discarded
			_, err := pso.Minimize(&pso.Problem{Dims: psoDims, Eval: sphere},
				pso.Options{Seed: seed, Swarm: 16, MaxIter: 60})
			return err
		}},
	}
	return probes, nil
}

// guardPair is one solver hot loop run twice: with the zero budget and with
// a fully armed monitor.
type guardPair struct {
	name      string
	size      int
	unguarded func() error
	guarded   func() error
}

// guardPairs pairs guarded and unguarded runs of the same solver hot loops
// (SDP ADMM iterations, PSO swarm steps, BFGS line-search descent) so a
// baseline can bound the overhead of an *armed* guard.Monitor — context
// poll, wall-deadline check, and eval accounting at every iteration
// boundary — against the identical zero-budget run. The robustness contract
// is that the guarded column stays within 2% of the unguarded one; timePair
// interleaves the two sides so host-load drift cancels out of the ratio.
func guardPairs(seed uint64) []guardPair {
	// A fully armed budget that never fires: every check path (cancelable
	// ctx select, deadline clock, eval cap) is exercised. A plain
	// context.Background would skip the select — its done channel is nil.
	armed := func() guard.Budget {
		ctx, cancel := context.WithCancel(context.Background())
		_ = cancel // deliberately never canceled: the monitor stays armed for the probe's lifetime
		return guard.Budget{Ctx: ctx, Deadline: time.Hour, MaxEvals: 1 << 40}
	}

	r := rng.New(seed + 1)
	const n = 12
	c := mat.New(n, n)
	for i := range c.Data {
		c.Data[i] = r.Norm()
	}
	c.Symmetrize()
	sdpProblem := func() *sdp.Problem {
		//lint:ignore rawproblem guard-overhead baseline measures the raw ADMM backend; routing through the prob IR would fold lowering cost into the guarded/unguarded ratio
		return &sdp.Problem{C: c, A: []*mat.Matrix{mat.Identity(n)}, B: []float64{2}}
	}
	sdpOpts := sdp.Options{MaxIter: 400, Tol: 1e-9} // tolerance kept unreachable: fixed 400 iterations

	sphere := func(v []float64) float64 {
		var s float64
		for _, u := range v {
			s += u * u
		}
		return s
	}
	psoDims := make([]pso.Dim, 6)
	for i := range psoDims {
		psoDims[i] = pso.Dim{Lo: -5, Hi: 5}
	}

	// Extended Rosenbrock in 32 dimensions: each BFGS iteration does O(n²)
	// work, so the probe measures the solver's hot loop rather than
	// per-iteration bookkeeping (a 2-D toy would).
	const rn = 32
	rosen := opt.Objective{
		F: func(x []float64) float64 {
			var s float64
			for i := 0; i+1 < len(x); i++ {
				a := 1 - x[i]
				b := x[i+1] - x[i]*x[i]
				s += a*a + 100*b*b
			}
			return s
		},
		Grad: func(x, g []float64) {
			for i := range g {
				g[i] = 0
			}
			for i := 0; i+1 < len(x); i++ {
				a := 1 - x[i]
				b := x[i+1] - x[i]*x[i]
				g[i] += -2*a - 400*x[i]*b
				g[i+1] += 200 * b
			}
		},
	}
	rosenX0 := make([]float64, rn)
	for i := range rosenX0 {
		rosenX0[i] = -1.2
	}

	sdpRun := func(b guard.Budget) func() error {
		return func() error {
			o := sdpOpts
			o.Budget = b
			//lint:ignore dropstatus timing probe: only wall-clock matters, the iterate is discarded
			_, err := sdp.Solve(sdpProblem(), o)
			if err != nil && !errors.Is(err, sdp.ErrNoProgress) {
				return err
			}
			return nil // ErrNoProgress is the point: a fixed 400-iteration loop
		}
	}
	psoRun := func(b guard.Budget) func() error {
		return func() error {
			//lint:ignore dropstatus timing probe: only wall-clock matters, the iterate is discarded
			_, err := pso.Minimize(&pso.Problem{Dims: psoDims, Eval: sphere},
				pso.Options{Seed: seed, Swarm: 16, MaxIter: 60, Budget: b})
			return err
		}
	}
	bfgsRun := func(b guard.Budget) func() error {
		return func() error {
			//lint:ignore dropstatus timing probe: only wall-clock matters, the iterate is discarded
			_, err := opt.BFGS(rosen, rosenX0, opt.Options{MaxIter: 200, Budget: b})
			return err
		}
	}
	return []guardPair{
		{"sdp_admm", n, sdpRun(guard.Budget{}), sdpRun(armed())},
		{"pso_sphere", 6, psoRun(guard.Budget{}), psoRun(armed())},
		{"bfgs_rosenbrock", rn, bfgsRun(guard.Budget{}), bfgsRun(armed())},
	}
}

// timePair measures a guarded/unguarded pair with interleaved rounds:
// calibrate an iteration count on the unguarded side, then alternate
// unguarded and guarded rounds ten times and keep each side's minimum.
// Interleaving means both sides sample the same host-load conditions, so
// slow drift cancels out of the guarded/unguarded ratio — sequential
// 150 ms probes on a busy host show ±5% swings that would swamp the <2%
// overhead bound this pair exists to check.
func timePair(unguarded, guarded func() error) (iters int, nsUnguarded, nsGuarded float64) {
	const roundTarget = 40 * time.Millisecond
	if err := unguarded(); err != nil {
		return 0, 0, 0
	}
	if err := guarded(); err != nil {
		return 0, 0, 0
	}
	iters = 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := unguarded(); err != nil {
				return 0, 0, 0
			}
		}
		elapsed := time.Since(start)
		if elapsed >= roundTarget || iters >= 1<<22 {
			break
		}
		next := iters * 2
		if elapsed > 0 {
			est := int(float64(iters) * float64(roundTarget) / float64(elapsed) * 12 / 10)
			if est > next {
				next = est
			}
		}
		iters = next
	}
	round := func(fn func() error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	bestU, bestG := time.Duration(0), time.Duration(0)
	for r := 0; r < 10; r++ {
		eu, err := round(unguarded)
		if err != nil {
			return 0, 0, 0
		}
		eg, err := round(guarded)
		if err != nil {
			return 0, 0, 0
		}
		if bestU == 0 || eu < bestU {
			bestU = eu
		}
		if bestG == 0 || eg < bestG {
			bestG = eg
		}
	}
	return iters, float64(bestU.Nanoseconds()) / float64(iters), float64(bestG.Nanoseconds()) / float64(iters)
}

// timeProbe runs fn enough times to pass a fixed wall-clock target and
// reports the iteration count and ns/op (testing.B-style calibration).
// Once calibrated it takes the best of three measurement rounds: on a
// shared host the minimum is the least contaminated estimate of the true
// cost, and the guarded/unguarded probe pairs need single-percent
// resolution that one round cannot deliver.
func timeProbe(fn func() error) (iters int, nsPerOp float64) {
	const target = 150 * time.Millisecond
	if err := fn(); err != nil { // warm up and surface configuration errors
		return 0, 0
	}
	iters = 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return 0, 0
			}
		}
		elapsed := time.Since(start)
		if elapsed >= target || iters >= 1<<22 {
			best := elapsed
			for round := 0; round < 2; round++ {
				start = time.Now()
				for i := 0; i < iters; i++ {
					if err := fn(); err != nil {
						return 0, 0
					}
				}
				if e := time.Since(start); e < best {
					best = e
				}
			}
			return iters, float64(best.Nanoseconds()) / float64(iters)
		}
		next := iters * 2
		if elapsed > 0 {
			est := int(float64(iters) * float64(target) / float64(elapsed) * 12 / 10)
			if est > next {
				next = est
			}
		}
		iters = next
	}
}
