package main

// Baseline capture: `rcrbench -baseline <label>` writes BENCH_<label>.json,
// a machine-readable performance snapshot of the numeric kernel's hot paths
// plus quick-mode wall times for every registered experiment. Committing the
// files produced before and after a performance PR records the repository's
// perf trajectory next to the code that produced it (see DESIGN.md §8).
//
// The kernel probes deliberately use only API that predates the plan-cached
// kernel (fft.FFT, stft.Transform, Matrix.Mul, pso.Minimize), so baselines
// taken at different commits measure the same operations.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/fft"
	"repro/internal/mat"
	"repro/internal/pso"
	"repro/internal/rng"
	"repro/internal/stft"
)

// Baseline is the schema of a BENCH_<label>.json file.
type Baseline struct {
	Label      string          `json:"label"`
	CapturedAt string          `json:"captured_at"` // RFC 3339, UTC
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	RCRWorkers string          `json:"rcr_workers"` // RCR_WORKERS env, "" = unset
	Kernels    []KernelTiming  `json:"kernels"`
	Exps       []ExperimentRun `json:"experiments"`
}

// KernelTiming is one micro-benchmark result.
type KernelTiming struct {
	Name    string  `json:"name"`
	Size    int     `json:"size"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

// ExperimentRun is one quick-mode experiment wall time.
type ExperimentRun struct {
	ID   string  `json:"id"`
	Ms   float64 `json:"ms"`
	Rows int     `json:"rows"`
}

// captureBaseline measures every probe and experiment and writes the
// baseline file into dir.
func captureBaseline(label, dir string, seed uint64) (string, error) {
	if label == "" {
		return "", fmt.Errorf("baseline label must be non-empty")
	}
	b := &Baseline{
		Label:      label,
		CapturedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		RCRWorkers: os.Getenv("RCR_WORKERS"),
	}
	kernels, err := kernelProbes(seed)
	if err != nil {
		return "", err
	}
	for _, p := range kernels {
		iters, ns := timeProbe(p.fn)
		b.Kernels = append(b.Kernels, KernelTiming{Name: p.name, Size: p.size, Iters: iters, NsPerOp: ns})
	}
	reg := experiments.Registry()
	for _, id := range experiments.Order() {
		start := time.Now()
		table, err := reg[id](seed, true)
		if err != nil {
			return "", fmt.Errorf("experiment %s: %w", id, err)
		}
		b.Exps = append(b.Exps, ExperimentRun{
			ID:   id,
			Ms:   float64(time.Since(start).Microseconds()) / 1e3,
			Rows: len(table.Rows),
		})
	}
	path := filepath.Join(dir, "BENCH_"+label+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

type probe struct {
	name string
	size int
	fn   func() error
}

// kernelProbes builds the closed set of hot-path micro-benchmarks. Inputs
// are deterministic (seeded); only the timing varies between runs.
func kernelProbes(seed uint64) ([]probe, error) {
	r := rng.New(seed)
	sig4096 := make([]complex128, 4096)
	for i := range sig4096 {
		sig4096[i] = complex(r.Norm(), r.Norm())
	}
	sig4095 := sig4096[:4095]

	audio := make([]float64, 16384)
	for i := range audio {
		audio[i] = r.Norm()
	}
	stftCfg := stft.DefaultConfig()

	const mm = 192
	a, bm := mat.New(mm, mm), mat.New(mm, mm)
	for i := range a.Data {
		a.Data[i] = r.Norm()
		bm.Data[i] = r.Norm()
	}
	const mv = 512
	mvec := mat.New(mv, mv)
	for i := range mvec.Data {
		mvec.Data[i] = r.Norm()
	}
	x := make([]float64, mv)
	for i := range x {
		x[i] = r.Norm()
	}

	sphere := func(v []float64) float64 {
		var s float64
		for _, u := range v {
			s += u * u
		}
		return s
	}
	psoDims := make([]pso.Dim, 6)
	for i := range psoDims {
		psoDims[i] = pso.Dim{Lo: -5, Hi: 5}
	}

	return []probe{
		{"fft_pow2_repeated", 4096, func() error {
			_ = fft.FFT(sig4096)
			return nil
		}},
		{"fft_bluestein_repeated", 4095, func() error {
			_ = fft.FFT(sig4095)
			return nil
		}},
		{"stft_transform", len(audio), func() error {
			_, err := stft.Transform(audio, stftCfg)
			return err
		}},
		{"mat_mul", mm, func() error {
			_, err := a.Mul(bm)
			return err
		}},
		{"mat_mulvec", mv, func() error {
			_, err := mvec.MulVec(x)
			return err
		}},
		{"pso_sphere", 6, func() error {
			_, err := pso.Minimize(&pso.Problem{Dims: psoDims, Eval: sphere},
				pso.Options{Seed: seed, Swarm: 16, MaxIter: 60})
			return err
		}},
	}, nil
}

// timeProbe runs fn enough times to pass a fixed wall-clock target and
// reports the iteration count and mean ns/op (testing.B-style calibration).
func timeProbe(fn func() error) (iters int, nsPerOp float64) {
	const target = 150 * time.Millisecond
	if err := fn(); err != nil { // warm up and surface configuration errors
		return 0, 0
	}
	iters = 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := fn(); err != nil {
				return 0, 0
			}
		}
		elapsed := time.Since(start)
		if elapsed >= target || iters >= 1<<22 {
			return iters, float64(elapsed.Nanoseconds()) / float64(iters)
		}
		next := iters * 2
		if elapsed > 0 {
			est := int(float64(iters) * float64(target) / float64(elapsed) * 12 / 10)
			if est > next {
				next = est
			}
		}
		iters = next
	}
}
