package main

// Kernel-overhaul probe series (ROADMAP item 4, DESIGN.md §13): dense
// factorization + triangular solve, symmetric eigendecomposition, a GEMM
// size sweep (the committed mat_mul probe only measured n=192), batched
// small-system solves in the many-small-SDPs shape that per-cell
// decomposition produces, and the two solver inner loops those kernels sit
// under (QP barrier Newton steps, SDP ADMM sweeps). Sizes bracket the
// n≈64–192 range the relaxation pipeline actually dispatches.
//
// Like kernelProbes, every input is seeded. The factorization and batch
// probes drive the plan APIs (CholPlan Factor+SolveInto, EigPlan.Decompose,
// mat.BatchSolve) — the same logical operations the pre-plan wrappers
// timed, now through the interface the solver inner loops actually hold, so
// BENCH_pre/BENCH_post captures taken at different commits stay comparable.

import (
	"errors"
	"fmt"

	"repro/internal/mat"
	"repro/internal/qp"
	"repro/internal/rng"
	"repro/internal/sdp"
)

// randVec fills a fresh length-n vector from r.
func randVec(r *rng.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.Norm()
	}
	return v
}

// randSym returns a random symmetric n×n matrix.
func randSym(r *rng.Rand, n int) *mat.Matrix {
	a := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.Norm()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

// spdMatrix returns MᵀM + n·I for random M: symmetric positive definite and
// well conditioned at every probe size.
func spdMatrix(r *rng.Rand, n int) (*mat.Matrix, error) {
	m := mat.New(n, n)
	for i := range m.Data {
		m.Data[i] = r.Norm()
	}
	a, err := m.T().Mul(m)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a, nil
}

// matProbes builds the factorization/eig/GEMM/batch probe series.
func matProbes(seed uint64) ([]probe, error) {
	r := rng.New(seed + 4)
	var probes []probe

	// Cholesky factor + solve at the sizes the QP/SDP inner loops see,
	// through the plan the loops hold across iterations.
	for _, n := range []int{64, 128, 192} {
		spd, err := spdMatrix(r, n)
		if err != nil {
			return nil, err
		}
		rhs := randVec(r, n)
		x := make([]float64, n)
		plan := mat.NewCholPlan(n)
		probes = append(probes, probe{"mat_cholesky", n, func() error {
			if err := plan.Factor(spd); err != nil {
				return err
			}
			plan.SolveInto(x, rhs)
			return nil
		}})
	}

	// Full symmetric eigendecomposition (the SDP PSD-projection kernel).
	for _, n := range []int{64, 128} {
		sym := randSym(r, n)
		plan := mat.NewEigPlan(n)
		probes = append(probes, probe{"mat_symeig", n, func() error {
			return plan.Decompose(sym)
		}})
	}

	// GEMM size sweep below the committed n=192 mat_mul probe.
	for _, n := range []int{64, 96, 128} {
		a := mat.New(n, n)
		b := mat.New(n, n)
		for i := range a.Data {
			a.Data[i] = r.Norm()
			b.Data[i] = r.Norm()
		}
		probes = append(probes, probe{"mat_mul", n, func() error {
			_, err := a.Mul(b)
			return err
		}})
	}

	// Batched small-system solves: 64 independent diagonally dominant n×n
	// systems per op — the shape a per-cell decomposition hands the kernel.
	const batchLen = 64
	for _, n := range []int{16, 32, 64} {
		as := make([]*mat.Matrix, batchLen)
		bs := make([][]float64, batchLen)
		for i := range as {
			a := mat.New(n, n)
			for k := range a.Data {
				a.Data[k] = r.Norm()
			}
			for d := 0; d < n; d++ {
				a.Add(d, d, float64(n))
			}
			as[i] = a
			bs[i] = randVec(r, n)
		}
		probes = append(probes, probe{"mat_batch_solve", n, func() error {
			xs, errs := mat.BatchSolve(as, bs)
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			if len(xs) != batchLen {
				return fmt.Errorf("batch solve returned %d solutions", len(xs))
			}
			return nil
		}})
	}

	qpProbe, err := qpBarrierProbe(seed)
	if err != nil {
		return nil, err
	}
	probes = append(probes, qpProbe, sdpADMMProbe(seed))
	return probes, nil
}

// qpBarrierProbe times a full barrier solve of a fixed strictly feasible
// QCQP — n=40 variables, one ball constraint, four halfspaces — so the
// ns/op tracks the Newton-step cost (Hessian assembly, KKT solve, line
// search) the ≥3x kernel target must show up in.
func qpBarrierProbe(seed uint64) (probe, error) {
	const n = 40
	r := rng.New(seed + 5)
	obj := qp.Quad{P: mat.Identity(n).Scale(2), Q: randVec(r, n)}
	ball := qp.Quad{P: mat.Identity(n).Scale(2), R: -25} // ‖x‖² <= 25
	ineq := []qp.Quad{ball}
	for k := 0; k < 4; k++ {
		a := randVec(r, n)
		for i := range a {
			a[i] *= 0.1
		}
		ineq = append(ineq, qp.Quad{Q: a, R: -1}) // aᵀx <= 1, strict at 0
	}
	//lint:ignore rawproblem kernel probe measures the raw barrier backend; routing through the prob IR would fold lowering cost into the Newton-step timing
	p := &qp.Problem{F0: obj, Ineq: ineq}
	x0 := make([]float64, n)
	opts := qp.Options{Tol: 1e-6}
	//lint:ignore dropstatus probe warm-up: only solvability matters here, the iterate is discarded
	if _, err := qp.Solve(p, x0, opts); err != nil {
		return probe{}, fmt.Errorf("qp probe: %w", err)
	}
	return probe{"qp_barrier_iter", n, func() error {
		//lint:ignore dropstatus timing probe: only wall-clock matters, the iterate is discarded
		_, err := qp.Solve(p, x0, opts)
		return err
	}}, nil
}

// sdpADMMProbe times 80 fixed ADMM iterations (tolerance kept unreachable)
// of an n=24 SDP with a trace constraint and three pinned entries: every
// iteration runs the affine projection (Cholesky solve of the constraint
// Gram) and the PSD projection (full eigendecomposition), the two kernels
// the plan-cached overhaul targets.
func sdpADMMProbe(seed uint64) probe {
	const n = 24
	r := rng.New(seed + 6)
	c := randSym(r, n)
	//lint:ignore rawproblem kernel probe measures the raw ADMM backend; routing through the prob IR would fold lowering cost into the iteration timing
	p := &sdp.Problem{
		C: c,
		A: []*mat.Matrix{mat.Identity(n), sdp.BasisElem(n, 0, 1), sdp.BasisElem(n, 2, 2), sdp.BasisElem(n, 3, 5)},
		B: []float64{2, 0.1, 0.5, -0.1},
	}
	opts := sdp.Options{MaxIter: 80, Tol: 1e-12}
	return probe{"sdp_admm_iter", n, func() error {
		//lint:ignore dropstatus timing probe: only wall-clock matters, the iterate is discarded
		_, err := sdp.Solve(p, opts)
		if err != nil && !errors.Is(err, sdp.ErrNoProgress) {
			return err
		}
		return nil
	}}
}
