// Command stftaudit runs the numerical-issues audit of the paper's Fig. 3
// against this repository's FFT/STFT/softmax kernels: signature and
// convention mismatches, window-length-dependent phase skew, non-circular
// frame truncation, Gabor-phase unreliability near machine precision,
// overflow/underflow, and unfused log-softmax instability.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stftaudit:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stftaudit", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "audit seed")
	quick := fs.Bool("quick", false, "reduced probe sizes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	table, err := experiments.F3NumericalAudit(*seed, *quick)
	if err != nil {
		return err
	}
	table.Fprint(os.Stdout)
	return nil
}
