package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixtureRoot = "../../internal/lint/testdata/src"

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestSeededViolationsFail checks the acceptance criterion directly: rcrlint
// must exit non-zero on the fixture tree, which seeds violations of every
// rule.
func TestSeededViolationsFail(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "floateq", "floateq")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "[floateq]") {
		t.Errorf("stdout missing [floateq] findings:\n%s", stdout)
	}
	if !strings.Contains(stderr, "unsuppressed finding(s)") {
		t.Errorf("stderr missing finding count:\n%s", stderr)
	}
}

// TestCleanPackagePasses checks exit 0 on a fixture package with no findings
// for the selected rule (internal/rng is the exempt façade).
func TestCleanPackagePasses(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "rawrand", "internal/rng")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no output, got:\n%s", stdout)
	}
}

// TestVerbosePrintsSuppressed checks that -v lists suppressed findings with
// reasons without affecting the exit code.
func TestVerbosePrintsSuppressed(t *testing.T) {
	code, stdout, _ := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "mutseed", "-v", "mutseed")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (fixture has live findings)", code)
	}
	if !strings.Contains(stdout, "(suppressed: fixture:") {
		t.Errorf("-v output missing suppressed finding:\n%s", stdout)
	}
}

func TestUnknownRuleUsageError(t *testing.T) {
	code, _, stderr := runCLI(t, "-rules", "bogus")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown rule") {
		t.Errorf("stderr missing unknown-rule message:\n%s", stderr)
	}
}

// TestTypoDirIsError checks that narrowing to a directory with no packages
// is a usage error, not a silently clean run.
func TestTypoDirIsError(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "nonexistent")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no packages in nonexistent") {
		t.Errorf("stderr missing no-packages message:\n%s", stderr)
	}
}

// TestJSONAndBaselineDiff checks the machine-readable pipeline end to end:
// -json emits a parseable artifact, and feeding that artifact back through
// -baseline turns the same findings into a clean exit while a fresh
// finding set still fails.
func TestJSONAndBaselineDiff(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "budgetless", "-json", "budgetless")
	if code != 1 {
		t.Fatalf("-json exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var findings []jsonFinding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, stdout)
	}
	var live, suppressed int
	for _, f := range findings {
		if f.File == "" || f.Line == 0 || f.Rule != "budgetless" || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
		if f.Suppressed {
			if f.Reason == "" {
				t.Errorf("suppressed finding without reason: %+v", f)
			}
			suppressed++
		} else {
			live++
		}
	}
	if live == 0 || suppressed == 0 {
		t.Fatalf("want live and suppressed findings in JSON, got %d/%d", live, suppressed)
	}

	base := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(base, []byte(stdout), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr = runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "budgetless", "-baseline", base, "budgetless")
	if code != 0 {
		t.Errorf("baselined run exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("baselined run should print no new findings, got:\n%s", stdout)
	}

	// A baseline for a different rule covers nothing: everything is new.
	code, _, stderr = runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "allochot", "-baseline", base, "allochot")
	if code != 1 {
		t.Errorf("unrelated baseline exit = %d, want 1", code)
	}
	if !strings.Contains(stderr, "new finding(s)") && !strings.Contains(stderr, "unsuppressed finding(s)") {
		t.Errorf("stderr missing finding count:\n%s", stderr)
	}
}

// TestOverlappingPatternsDedupe checks a package named by several patterns
// reports its findings once.
func TestOverlappingPatternsDedupe(t *testing.T) {
	_, once, _ := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "floateq", "floateq")
	_, overlapped, _ := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "floateq", "floateq", "floateq/...", "floateq")
	if once != overlapped {
		t.Errorf("overlapping patterns changed output\n--- once ---\n%s--- overlapped ---\n%s", once, overlapped)
	}
	if strings.Count(once, "[floateq]") == 0 {
		t.Fatalf("fixture produced no findings:\n%s", once)
	}
}

// TestRecursivePattern checks dir/... reports the subtree.
func TestRecursivePattern(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "nondet", "internal/...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (internal/pso seeds nondet findings)\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "internal/pso/pso.go") {
		t.Errorf("recursive pattern missed internal/pso:\n%s", stdout)
	}
}

// TestEscapesModeCleanOnRepo runs the compiler cross-check over the real
// module: the committed hot roots must be allocation-free per the
// compiler's own escape analysis, not just the AST over-approximation.
func TestEscapesModeCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module with -gcflags=-m")
	}
	code, stdout, stderr := runCLI(t, "-C", "../..", "-escapes", "./...")
	if code != 0 {
		t.Errorf("-escapes exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}

// TestEscapeLineParsing pins the -gcflags=-m output shapes the cross-check
// consumes.
func TestEscapeLineParsing(t *testing.T) {
	cases := []struct {
		line string
		want bool
	}{
		{"internal/mat/qr.go:21:12: make([]float64, n) escapes to heap", true},
		{"internal/fft/plan.go:7:9: moved to heap: x", true},
		{"internal/mat/qr.go:21:12: can inline VecDot", false},
		{"<autogenerated>:1: leaking param: m", false},
	}
	for _, tc := range cases {
		if got := escapeLine.MatchString(tc.line); got != tc.want {
			t.Errorf("escapeLine(%q) = %v, want %v", tc.line, got, tc.want)
		}
	}
	if !constEscape.MatchString(`"mat: negative dimension" escapes to heap`) {
		t.Error("constEscape should match constant-string escapes")
	}
	if constEscape.MatchString("make([]float64, n) escapes to heap") {
		t.Error("constEscape must not match real allocations")
	}
}

func TestDirOutsideModule(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "../../..")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "outside module root") {
		t.Errorf("stderr missing out-of-root message:\n%s", stderr)
	}
}
