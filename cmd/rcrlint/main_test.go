package main

import (
	"bytes"
	"strings"
	"testing"
)

const fixtureRoot = "../../internal/lint/testdata/src"

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestSeededViolationsFail checks the acceptance criterion directly: rcrlint
// must exit non-zero on the fixture tree, which seeds violations of every
// rule.
func TestSeededViolationsFail(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "floateq", "floateq")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "[floateq]") {
		t.Errorf("stdout missing [floateq] findings:\n%s", stdout)
	}
	if !strings.Contains(stderr, "unsuppressed finding(s)") {
		t.Errorf("stderr missing finding count:\n%s", stderr)
	}
}

// TestCleanPackagePasses checks exit 0 on a fixture package with no findings
// for the selected rule (internal/rng is the exempt façade).
func TestCleanPackagePasses(t *testing.T) {
	code, stdout, stderr := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "rawrand", "internal/rng")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no output, got:\n%s", stdout)
	}
}

// TestVerbosePrintsSuppressed checks that -v lists suppressed findings with
// reasons without affecting the exit code.
func TestVerbosePrintsSuppressed(t *testing.T) {
	code, stdout, _ := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "-rules", "mutseed", "-v", "mutseed")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (fixture has live findings)", code)
	}
	if !strings.Contains(stdout, "(suppressed: fixture:") {
		t.Errorf("-v output missing suppressed finding:\n%s", stdout)
	}
}

func TestUnknownRuleUsageError(t *testing.T) {
	code, _, stderr := runCLI(t, "-rules", "bogus")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown rule") {
		t.Errorf("stderr missing unknown-rule message:\n%s", stderr)
	}
}

// TestTypoDirIsError checks that narrowing to a directory with no packages
// is a usage error, not a silently clean run.
func TestTypoDirIsError(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "nonexistent")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "no packages in nonexistent") {
		t.Errorf("stderr missing no-packages message:\n%s", stderr)
	}
}

func TestDirOutsideModule(t *testing.T) {
	code, _, stderr := runCLI(t,
		"-C", fixtureRoot, "-module", "fixture", "../../..")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "outside module root") {
		t.Errorf("stderr missing out-of-root message:\n%s", stderr)
	}
}
