// Command rcrlint runs the repository's numerics static analyzers (see
// internal/lint) over a Go module and prints every finding as
//
//	file:line: [rule] message
//
// Exit codes are scriptable from ci.sh:
//
//	0  every finding is fixed, suppressed with a reasoned //lint:ignore
//	   directive, or already present in the -baseline artifact
//	1  unsuppressed (and, with -baseline, new) findings remain
//	2  load, build, or usage error
//
// Usage:
//
//	rcrlint [flags] [./... | dir | dir/... ...]
//
// With "./..." (or no arguments) every package under the enclosing module
// reports findings. Explicit directories narrow which packages report;
// "dir/..." includes their subtrees. The whole module is always loaded and
// analyzed regardless — the interprocedural rules (allochot, nondet,
// budgetless) need the full call graph, so a narrowed run sees the same
// graph and only filters what is printed. Overlapping patterns report each
// package once.
//
// -json emits the findings (suppressed ones included, marked) as a JSON
// array for CI artifacts. -baseline compares against a previous -json
// artifact and fails only on findings not present in it, keyed by
// (file, rule, message) so pure line motion does not break CI.
//
// -escapes cross-checks the allochot rule against the compiler: it runs
// `go build -gcflags=-m`, keeps the "escapes to heap"/"moved to heap"
// diagnostics that land inside functions reachable from //rcr:hot roots,
// and reports them under the allochot rule (suppressions apply as usual).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rcrlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		chdir    = fs.String("C", "", "analyze the module rooted at this `dir` instead of the working directory")
		modPath  = fs.String("module", "", "module `path` override for trees without a go.mod (fixtures)")
		rules    = fs.String("rules", "", "comma-separated `list` of rules to run (default: all)")
		verbose  = fs.Bool("v", false, "also print suppressed and baselined findings")
		jsonOut  = fs.Bool("json", false, "emit findings as a JSON array (suppressed ones included, marked)")
		baseline = fs.String("baseline", "", "JSON artifact from a previous -json run; fail only on findings not in `file`")
		escapes  = fs.Bool("escapes", false, "cross-check hot-path allocations against `go build -gcflags=-m` output")
	)
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: rcrlint [flags] [./... | dir | dir/... ...]")
		fmt.Fprintln(stderr, "exit codes: 0 clean (or no new findings vs -baseline), 1 findings, 2 load/usage error")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	root := *chdir
	if root == "" {
		root = "."
	}
	root, err = filepath.Abs(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cfg := lint.Config{Root: root, ModulePath: *modPath}
	if *modPath == "" {
		var err error
		if cfg.Root, cfg.ModulePath, err = lint.FindModuleRoot(root); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	// Positional args: "./..." (or nothing) means the whole module reports;
	// explicit directories narrow reporting, with "dir/..." spanning the
	// subtree. The full module is loaded either way.
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." {
			cfg.Dirs = nil
			break
		}
		dirs, errCode := expandPattern(cfg.Root, root, arg, stderr)
		if errCode != 0 {
			return errCode
		}
		cfg.Dirs = append(cfg.Dirs, dirs...)
	}

	fset, pkgs, err := lint.Load(cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	reported := 0
	for _, p := range pkgs {
		if p.Report {
			reported++
		}
	}
	// A narrowed run that matches nothing is a typo'd path, not a clean tree.
	if len(cfg.Dirs) > 0 && reported == 0 {
		fmt.Fprintf(stderr, "rcrlint: no packages in %s\n", strings.Join(cfg.Dirs, ", "))
		return 2
	}

	var diags []lint.Diagnostic
	if *escapes {
		diags, err = escapeDiagnostics(cfg, fset, pkgs)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		diags = lint.Run(fset, pkgs, analyzers)
	}

	base, err := loadBaseline(*baseline)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	live, baselined := 0, 0
	isNew := make([]bool, len(diags))
	for i, d := range diags {
		if d.Suppressed {
			continue
		}
		if base.covers(d, cfg.Root) {
			baselined++
			continue
		}
		isNew[i] = true
		live++
	}

	if *jsonOut {
		if err := writeJSON(stdout, diags, cfg.Root); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for i, d := range diags {
			if !*verbose && (d.Suppressed || !isNew[i]) {
				continue
			}
			fmt.Fprintln(stdout, d.Format(cfg.Root))
		}
	}
	if live > 0 {
		if baselined > 0 {
			fmt.Fprintf(stderr, "rcrlint: %d new finding(s) (%d more in baseline)\n", live, baselined)
		} else {
			fmt.Fprintf(stderr, "rcrlint: %d unsuppressed finding(s)\n", live)
		}
		return 1
	}
	return 0
}

// expandPattern maps one positional argument to root-relative directories.
// "dir" is that directory; "dir/..." is every directory under it containing
// .go files (testdata, hidden, and underscore-prefixed directories are
// skipped, as in loading).
func expandPattern(modRoot, cwd, arg string, stderr io.Writer) ([]string, int) {
	recursive := false
	if rest, ok := strings.CutSuffix(arg, "/..."); ok {
		recursive = true
		arg = rest
	}
	abs, err := filepath.Abs(filepath.Join(cwd, arg))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return nil, 2
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		fmt.Fprintf(stderr, "rcrlint: %s is outside module root %s\n", arg, modRoot)
		return nil, 2
	}
	if !recursive {
		return []string{rel}, 0
	}
	var out []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				r, err := filepath.Rel(modRoot, path)
				if err != nil {
					return err
				}
				out = append(out, r)
				break
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintf(stderr, "rcrlint: %s: %v\n", arg, err)
		return nil, 2
	}
	return out, 0
}

// jsonFinding is the machine-readable form of one diagnostic, stable for
// CI artifacts and -baseline diffs.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Rule       string `json:"rule"`
	Severity   string `json:"severity"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

func toJSON(d lint.Diagnostic, root string) jsonFinding {
	name := d.Position.Filename
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		name = filepath.ToSlash(rel)
	}
	return jsonFinding{
		File:       name,
		Line:       d.Position.Line,
		Rule:       d.Rule,
		Severity:   d.Severity.String(),
		Message:    d.Message,
		Suppressed: d.Suppressed,
		Reason:     d.Reason,
	}
}

func writeJSON(w io.Writer, diags []lint.Diagnostic, root string) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, toJSON(d, root))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// baselineSet counts accepted findings keyed by (file, rule, message) —
// line numbers are deliberately excluded so unrelated edits that move a
// finding do not break CI.
type baselineSet struct {
	counts map[string]int
}

func baselineKey(file, rule, message string) string {
	return file + "\x00" + rule + "\x00" + message
}

// loadBaseline parses a previous -json artifact. An empty path yields an
// empty set (every unsuppressed finding is new).
func loadBaseline(path string) (*baselineSet, error) {
	b := &baselineSet{counts: map[string]int{}}
	if path == "" {
		return b, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("rcrlint: baseline: %w", err)
	}
	var findings []jsonFinding
	if err := json.Unmarshal(data, &findings); err != nil {
		return nil, fmt.Errorf("rcrlint: baseline %s: %w", path, err)
	}
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		b.counts[baselineKey(f.File, f.Rule, f.Message)]++
	}
	return b, nil
}

// covers consumes one baseline slot for the diagnostic, reporting whether
// one was available.
func (b *baselineSet) covers(d lint.Diagnostic, root string) bool {
	f := toJSON(d, root)
	k := baselineKey(f.File, f.Rule, f.Message)
	if b.counts[k] > 0 {
		b.counts[k]--
		return true
	}
	return false
}

// escapeLine matches one compiler escape diagnostic, e.g.
// "internal/mat/qr.go:21:12: make([]float64, n) escapes to heap".
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): ((?:.+ )?(?:escapes to heap|moved to heap).*)$`)

// constEscape matches escape messages about untyped constants ("..."
// escapes to heap): those become static interface data, not per-call heap
// allocations, mirroring the AST rule's constant exemption.
var constEscape = regexp.MustCompile(`^".*" escapes to heap$`)

// escapeDiagnostics runs the compiler's escape analysis over the module and
// keeps the diagnostics landing inside hot regions (functions reachable
// from //rcr:hot roots), so the AST-level allochot rule and the compiler
// must agree on the hot path.
func escapeDiagnostics(cfg lint.Config, fset *token.FileSet, pkgs []*lint.Package) ([]lint.Diagnostic, error) {
	prog := lint.NewProgram(fset, pkgs)
	regions := prog.HotRegions()
	if len(regions) == 0 {
		return nil, nil
	}

	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = cfg.Root
	out, err := cmd.CombinedOutput()
	if err != nil {
		// -m diagnostics land on stderr on success too; a failure means the
		// module does not build.
		return nil, fmt.Errorf("rcrlint: go build -gcflags=-m: %v\n%s", err, out)
	}

	var diags []lint.Diagnostic
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if constEscape.MatchString(msg) {
			continue
		}
		lineNo, err := strconv.Atoi(m[2])
		if err != nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(cfg.Root, file)
		}
		for _, r := range regions {
			if r.File == file && lineNo >= r.StartLine && lineNo <= r.EndLine {
				diags = append(diags, lint.Diagnostic{
					Position: token.Position{Filename: file, Line: lineNo},
					Rule:     "allochot",
					Severity: lint.Warning,
					Message:  fmt.Sprintf("compiler escape analysis: %s in hot function %s; hot kernels must not allocate per call", msg, r.Func),
				})
				break
			}
		}
	}
	return lint.ApplySuppressions(fset, pkgs, diags), nil
}
