// Command rcrlint runs the repository's numerics static analyzers (see
// internal/lint) over a Go module and prints every finding as
//
//	file:line: [rule] message
//
// It exits 0 when every finding is fixed or suppressed with a reasoned
// //lint:ignore directive, 1 when unsuppressed findings remain, and 2 on
// load or usage errors — so it is directly scriptable from ci.sh.
//
// Usage:
//
//	rcrlint [flags] [./... | dir ...]
//
// With "./..." (or no arguments) every package under the enclosing module
// is analyzed. Explicit directories restrict analysis to those packages;
// the rest of the module is still loaded for type information.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rcrlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		chdir   = fs.String("C", "", "analyze the module rooted at this `dir` instead of the working directory")
		modPath = fs.String("module", "", "module `path` override for trees without a go.mod (fixtures)")
		rules   = fs.String("rules", "", "comma-separated `list` of rules to run (default: all)")
		verbose = fs.Bool("v", false, "also print suppressed findings with their reasons")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers, err := lint.ByName(*rules)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	root := *chdir
	if root == "" {
		root = "."
	}
	root, err = filepath.Abs(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	cfg := lint.Config{Root: root, ModulePath: *modPath}
	if *modPath == "" {
		var err error
		if cfg.Root, cfg.ModulePath, err = lint.FindModuleRoot(root); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	// Positional args: "./..." (or nothing) means the whole module;
	// explicit directories narrow the analyzed set.
	for _, arg := range fs.Args() {
		if arg == "./..." || arg == "..." {
			cfg.Dirs = nil
			break
		}
		arg = strings.TrimSuffix(arg, "/...")
		abs, err := filepath.Abs(filepath.Join(root, arg))
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		rel, err := filepath.Rel(cfg.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			fmt.Fprintf(stderr, "rcrlint: %s is outside module root %s\n", arg, cfg.Root)
			return 2
		}
		cfg.Dirs = append(cfg.Dirs, rel)
	}

	fset, pkgs, err := lint.Load(cfg)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// A narrowed run that matches nothing is a typo'd path, not a clean tree.
	if len(cfg.Dirs) > 0 && len(pkgs) == 0 {
		fmt.Fprintf(stderr, "rcrlint: no packages in %s\n", strings.Join(cfg.Dirs, ", "))
		return 2
	}

	diags := lint.Run(fset, pkgs, analyzers)
	live := 0
	for _, d := range diags {
		if d.Suppressed && !*verbose {
			continue
		}
		if !d.Suppressed {
			live++
		}
		fmt.Fprintln(stdout, d.Format(cfg.Root))
	}
	if live > 0 {
		fmt.Fprintf(stderr, "rcrlint: %d unsuppressed finding(s)\n", live)
		return 1
	}
	return 0
}
