// Command qossolver generates and solves a 5G QoS radio-resource
// allocation instance (the paper's motivating MINLP) with the requested
// solver and prints the allocation and its QoS report as JSON.
//
// Usage:
//
//	qossolver -embb 2 -urllc 1 -mmtc 2 -rbs 8 -solver exact
//	qossolver -solver pso -seed 7
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/minlp"
	"repro/internal/pso"
	"repro/internal/qos"
)

// output is the JSON document printed on success.
type output struct {
	Solver             string    `json:"solver"`
	Users              int       `json:"users"`
	RBs                int       `json:"rbs"`
	UserOf             []int     `json:"userOf"`
	PowerW             []float64 `json:"powerW"`
	TotalRateBps       float64   `json:"totalRateBps"`
	SpectralEfficiency float64   `json:"spectralEfficiencyBpsHz"`
	AllQoSMet          bool      `json:"allQoSMet"`
	RatePerUserBps     []float64 `json:"ratePerUserBps"`
	QoSMet             []bool    `json:"qosMet"`
	Note               string    `json:"note,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qossolver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("qossolver", flag.ContinueOnError)
	embb := fs.Int("embb", 1, "number of eMBB users")
	urllc := fs.Int("urllc", 1, "number of URLLC users")
	mmtc := fs.Int("mmtc", 1, "number of mMTC users")
	rbs := fs.Int("rbs", 6, "number of resource blocks")
	seed := fs.Uint64("seed", 1, "channel seed")
	solver := fs.String("solver", "exact", "solver: greedy | pso | exact")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := qos.GenerateProblem(*embb, *urllc, *mmtc, *rbs, *seed)
	if err != nil {
		return err
	}
	var alloc *qos.Allocation
	note := ""
	switch *solver {
	case "greedy":
		alloc, err = p.SolveGreedy()
	case "pso":
		alloc, _, err = p.SolvePSO(pso.Options{Seed: *seed, Swarm: 30, MaxIter: 250,
			Inertia: pso.DefaultAdaptiveInertia(), StagnationWindow: 20})
	case "exact":
		var res *minlp.Result
		alloc, res, err = p.SolveExact(minlp.Options{MaxNodes: 300000})
		if err == nil && alloc == nil {
			note = "exact solver: " + res.Status.String()
		}
	default:
		return fmt.Errorf("unknown solver %q", *solver)
	}
	if err != nil {
		return err
	}
	out := output{Solver: *solver, Users: len(p.Users), RBs: *rbs, Note: note}
	if alloc != nil {
		rep, err := p.Evaluate(alloc)
		if err != nil {
			return err
		}
		out.UserOf = alloc.UserOf
		out.PowerW = alloc.PowerW
		out.TotalRateBps = rep.TotalRateBps
		out.SpectralEfficiency = rep.SpectralEfficiency
		out.AllQoSMet = rep.AllQoSMet
		out.RatePerUserBps = rep.RatePerUser
		out.QoSMet = rep.QoSMet
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
