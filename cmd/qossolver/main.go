// Command qossolver generates and solves a 5G QoS radio-resource
// allocation instance (the paper's motivating MINLP) with the requested
// solver and prints the allocation and its QoS report as JSON.
//
// Usage:
//
//	qossolver -embb 2 -urllc 1 -mmtc 2 -rbs 8 -solver exact
//	qossolver -solver pso -seed 7
//	qossolver -solver robust -timeout 2s
//
// The exit code reflects the solver's typed termination status so scripts
// can distinguish degraded outcomes without parsing JSON:
//
//	0 converged/optimal · 1 usage or internal error · 2 infeasible ·
//	3 budget exhausted · 4 timeout · 5 canceled · 6 diverged
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/guard"
	"repro/internal/minlp"
	"repro/internal/pso"
	"repro/internal/qos"
	"repro/internal/serve"
)

// output is the JSON document printed on success.
type output struct {
	Solver             string    `json:"solver"`
	Users              int       `json:"users"`
	RBs                int       `json:"rbs"`
	Status             string    `json:"status"`
	UserOf             []int     `json:"userOf"`
	PowerW             []float64 `json:"powerW"`
	TotalRateBps       float64   `json:"totalRateBps"`
	SpectralEfficiency float64   `json:"spectralEfficiencyBpsHz"`
	AllQoSMet          bool      `json:"allQoSMet"`
	RatePerUserBps     []float64 `json:"ratePerUserBps"`
	QoSMet             []bool    `json:"qosMet"`
	Degradation        string    `json:"degradation,omitempty"`
	Note               string    `json:"note,omitempty"`
}

// exitCode maps a typed termination status onto the documented exit codes
// via the shared serve taxonomy, so the CLI and the qosd service agree on
// what every guard.Status means.
func exitCode(st guard.Status) int {
	return serve.OutcomeForStatus(st).ExitCode()
}

func main() {
	st, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "qossolver:", err)
		if s, ok := guard.AsStatus(err); ok {
			os.Exit(exitCode(s))
		}
		os.Exit(1)
	}
	os.Exit(exitCode(st))
}

// run executes one solve and returns the typed termination status alongside
// any hard error (bad flags, invalid instance, internal failure).
func run(args []string) (guard.Status, error) {
	fs := flag.NewFlagSet("qossolver", flag.ContinueOnError)
	embb := fs.Int("embb", 1, "number of eMBB users")
	urllc := fs.Int("urllc", 1, "number of URLLC users")
	mmtc := fs.Int("mmtc", 1, "number of mMTC users")
	rbs := fs.Int("rbs", 6, "number of resource blocks")
	seed := fs.Uint64("seed", 1, "channel seed")
	solver := fs.String("solver", "exact", "solver: greedy | pso | exact | robust")
	timeout := fs.Duration("timeout", 0, "wall-clock budget for the solve (0 = none)")
	if err := fs.Parse(args); err != nil {
		return guard.StatusOK, err
	}
	budget := guard.Budget{Deadline: *timeout}
	p, err := qos.GenerateProblem(*embb, *urllc, *mmtc, *rbs, *seed)
	if err != nil {
		return guard.StatusOK, err
	}
	var alloc *qos.Allocation
	st := guard.StatusConverged
	note := ""
	degradation := ""
	switch *solver {
	case "greedy":
		alloc, err = p.SolveGreedy()
	case "pso":
		var res *pso.Result
		alloc, res, err = p.SolvePSO(pso.Options{Seed: *seed, Swarm: 30, MaxIter: 250,
			Inertia: pso.DefaultAdaptiveInertia(), StagnationWindow: 20, Budget: budget})
		if res != nil {
			st = res.Status
		}
	case "exact":
		var res *minlp.Result
		alloc, res, err = p.SolveExact(minlp.Options{MaxNodes: 300000, Budget: budget})
		if res != nil {
			// One mapping end to end: interruption causes from the budget
			// guard, solver outcomes through the canonical Status→guard table.
			st = res.Guard
			if st == guard.StatusOK {
				st = res.Status.Guard()
			}
			if err == nil && alloc == nil {
				note = "exact solver: " + res.Status.String()
			}
		}
	case "robust":
		var rep *qos.Report
		var deg *qos.Degradation
		alloc, rep, deg, err = p.SolveRobust(qos.RobustOptions{Budget: budget, Seed: *seed,
			PSO: pso.Options{Swarm: 30, MaxIter: 250, Inertia: pso.DefaultAdaptiveInertia(), StagnationWindow: 20}})
		if err == nil {
			degradation = deg.String()
			fmt.Fprintln(os.Stderr, degradation)
			st = deg.Rungs[len(deg.Rungs)-1].Status
			if rep.AllQoSMet && !deg.Degraded() {
				st = guard.StatusConverged
			}
		}
	default:
		return guard.StatusOK, fmt.Errorf("unknown solver %q", *solver)
	}
	if err != nil {
		// Interrupted stochastic runs still carry a typed cause; surface it
		// through the exit code rather than a generic failure.
		if s, ok := guard.AsStatus(err); ok {
			return s, err
		}
		return guard.StatusOK, err
	}
	out := output{Solver: *solver, Users: len(p.Users), RBs: *rbs, Status: st.String(),
		Note: note, Degradation: degradation}
	if alloc != nil {
		rep, err := p.Evaluate(alloc)
		if err != nil {
			return st, err
		}
		out.UserOf = alloc.UserOf
		out.PowerW = alloc.PowerW
		out.TotalRateBps = rep.TotalRateBps
		out.SpectralEfficiency = rep.SpectralEfficiency
		out.AllQoSMet = rep.AllQoSMet
		out.RatePerUserBps = rep.RatePerUser
		out.QoSMet = rep.QoSMet
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return st, err
	}
	return st, nil
}
