package main

import (
	"strings"
	"testing"

	"repro/internal/guard"
)

func TestRunGreedy(t *testing.T) {
	st, err := run([]string{"-solver", "greedy", "-rbs", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if st != guard.StatusConverged {
		t.Fatalf("status = %v, want converged", st)
	}
}

func TestRunRobust(t *testing.T) {
	st, err := run([]string{"-solver", "robust", "-rbs", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if exitCode(st) != 0 && exitCode(st) != 2 {
		t.Fatalf("robust solve status %v (exit %d)", st, exitCode(st))
	}
}

func TestRunUnknownSolver(t *testing.T) {
	_, err := run([]string{"-solver", "magic"})
	if err == nil || !strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("want unknown solver error, got %v", err)
	}
}

func TestRunRejectsBadInstance(t *testing.T) {
	if _, err := run([]string{"-embb", "0", "-urllc", "0", "-mmtc", "0"}); err == nil {
		t.Fatal("want error for empty instance")
	}
}

func TestExitCodes(t *testing.T) {
	cases := map[guard.Status]int{
		guard.StatusOK:         0,
		guard.StatusConverged:  0,
		guard.StatusInfeasible: 2,
		guard.StatusMaxIter:    3,
		guard.StatusTimeout:    4,
		guard.StatusCanceled:   5,
		guard.StatusDiverged:   6,
		guard.StatusUnbounded:  6,
		guard.Status(42):       1,
	}
	for st, want := range cases {
		if got := exitCode(st); got != want {
			t.Errorf("exitCode(%v) = %d, want %d", st, got, want)
		}
	}
}

// TestRunTimeoutTyped pins the -timeout flag: an unmeetable deadline on the
// exact solver must surface as a typed budget/timeout status, not a generic
// failure, and the robust ladder must still exit 0-or-degraded.
func TestRunTimeoutTyped(t *testing.T) {
	st, err := run([]string{"-solver", "exact", "-rbs", "8", "-embb", "2", "-mmtc", "2", "-timeout", "1ns"})
	if err != nil {
		t.Fatalf("exact with timeout errored hard: %v", err)
	}
	if st != guard.StatusTimeout {
		t.Fatalf("status = %v, want timeout", st)
	}
	if exitCode(st) != 4 {
		t.Fatalf("exit = %d, want 4", exitCode(st))
	}
}
