package main

import (
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/serve"
)

func TestRunGreedy(t *testing.T) {
	st, err := run([]string{"-solver", "greedy", "-rbs", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if st != guard.StatusConverged {
		t.Fatalf("status = %v, want converged", st)
	}
}

func TestRunRobust(t *testing.T) {
	st, err := run([]string{"-solver", "robust", "-rbs", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if exitCode(st) != 0 && exitCode(st) != 2 {
		t.Fatalf("robust solve status %v (exit %d)", st, exitCode(st))
	}
}

func TestRunUnknownSolver(t *testing.T) {
	_, err := run([]string{"-solver", "magic"})
	if err == nil || !strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("want unknown solver error, got %v", err)
	}
}

func TestRunRejectsBadInstance(t *testing.T) {
	if _, err := run([]string{"-embb", "0", "-urllc", "0", "-mmtc", "0"}); err == nil {
		t.Fatal("want error for empty instance")
	}
}

// TestExitCodes pins the CLI exit code for every guard.Status and checks the
// mapping is the serve taxonomy verbatim — the CLI and the qosd service must
// never disagree on what a typed status means.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		st      guard.Status
		want    int
		outcome serve.Outcome
	}{
		{guard.StatusOK, 0, serve.OutcomeServed},
		{guard.StatusConverged, 0, serve.OutcomeServed},
		{guard.StatusInfeasible, 2, serve.OutcomeInfeasible},
		{guard.StatusMaxIter, 3, serve.OutcomeExhausted},
		{guard.StatusTimeout, 4, serve.OutcomeDeadline},
		{guard.StatusCanceled, 5, serve.OutcomeCanceled},
		{guard.StatusDiverged, 6, serve.OutcomeUncertified},
		{guard.StatusUnbounded, 6, serve.OutcomeUncertified},
		{guard.Status(42), 1, serve.OutcomeError},
	}
	for _, c := range cases {
		if got := exitCode(c.st); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.st, got, c.want)
		}
		if got := serve.OutcomeForStatus(c.st); got != c.outcome {
			t.Errorf("OutcomeForStatus(%v) = %v, want %v", c.st, got, c.outcome)
		}
		if got := serve.OutcomeForStatus(c.st).ExitCode(); got != c.want {
			t.Errorf("service exit for %v = %d, CLI says %d", c.st, got, c.want)
		}
	}
}

// TestRunTimeoutTyped pins the -timeout flag: an unmeetable deadline on the
// exact solver must surface as a typed budget/timeout status, not a generic
// failure, and the robust ladder must still exit 0-or-degraded.
func TestRunTimeoutTyped(t *testing.T) {
	st, err := run([]string{"-solver", "exact", "-rbs", "8", "-embb", "2", "-mmtc", "2", "-timeout", "1ns"})
	if err != nil {
		t.Fatalf("exact with timeout errored hard: %v", err)
	}
	if st != guard.StatusTimeout {
		t.Fatalf("status = %v, want timeout", st)
	}
	if exitCode(st) != 4 {
		t.Fatalf("exit = %d, want 4", exitCode(st))
	}
}
