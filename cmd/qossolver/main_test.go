package main

import (
	"strings"
	"testing"
)

func TestRunGreedy(t *testing.T) {
	if err := run([]string{"-solver", "greedy", "-rbs", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownSolver(t *testing.T) {
	err := run([]string{"-solver", "magic"})
	if err == nil || !strings.Contains(err.Error(), "unknown solver") {
		t.Fatalf("want unknown solver error, got %v", err)
	}
}

func TestRunRejectsBadInstance(t *testing.T) {
	if err := run([]string{"-embb", "0", "-urllc", "0", "-mmtc", "0"}); err == nil {
		t.Fatal("want error for empty instance")
	}
}
