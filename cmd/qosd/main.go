// Command qosd runs the overload-safe QoS allocation service (internal/serve)
// in one of two modes:
//
// Workload mode (default) drives a seeded synthetic request stream through
// the service and prints a JSON summary of outcomes and service stats —
// the operational smoke test behind the rcrbench qosd probes:
//
//	qosd -requests 48 -seed 1
//	qosd -requests 200 -rate 0.5 -burst 4        # forced overload: typed sheds
//
// Serve mode (-listen) runs an HTTP front end until SIGINT/SIGTERM, then
// drains gracefully:
//
//	qosd -listen 127.0.0.1:8080
//	curl -X POST :8080/solve -d '{"class":"URLLC","seed":7}'
//	curl :8080/stats
//
// The exit code reports service health, not any single solve: 0 when the run
// finished with zero recovered panics, zero uncertified responses, and zero
// internal errors; 1 otherwise. Individual responses carry their own typed
// outcome (and the qossolver-compatible exit code) in the JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/guard"
	"repro/internal/qos"
	"repro/internal/serve"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qosd:", err)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

// options is the parsed flag set.
type options struct {
	requests int
	seed     uint64
	problems int
	embb     int
	urllc    int
	mmtc     int
	rbs      int

	workers  int
	queue    int
	batch    int
	rate     float64
	burst    float64
	retries  int
	maxevals int
	listen   string
	cacheDir string
}

func parseFlags(args []string) (options, error) {
	var o options
	fs := flag.NewFlagSet("qosd", flag.ContinueOnError)
	fs.IntVar(&o.requests, "requests", 48, "workload mode: number of requests to drive")
	fs.Uint64Var(&o.seed, "seed", 1, "master seed for instances and request seeds")
	fs.IntVar(&o.problems, "problems", 4, "number of distinct instances to rotate through")
	fs.IntVar(&o.embb, "embb", 1, "eMBB users per instance")
	fs.IntVar(&o.urllc, "urllc", 1, "URLLC users per instance")
	fs.IntVar(&o.mmtc, "mmtc", 1, "mMTC users per instance")
	fs.IntVar(&o.rbs, "rbs", 6, "resource blocks per instance")
	fs.IntVar(&o.workers, "workers", 0, "solver pool size (0 = RCR_WORKERS / GOMAXPROCS)")
	fs.IntVar(&o.queue, "queue", 0, "per-class queue depth (0 = default)")
	fs.IntVar(&o.batch, "batch", 0, "mMTC coalescing batch size (0 = default)")
	fs.Float64Var(&o.rate, "rate", 0, "admission tokens per submission tick (0 = no rate limit)")
	fs.Float64Var(&o.burst, "burst", 0, "admission token-bucket capacity")
	fs.IntVar(&o.retries, "retries", 0, "attempts for diverged solves (0 = default, no retry)")
	fs.IntVar(&o.maxevals, "maxevals", 0, "replace per-class budgets with an eval-only cap (0 = class defaults); eval caps have no wall clock, so outcomes become load-independent")
	fs.StringVar(&o.listen, "listen", "", "serve mode: HTTP listen address (empty = workload mode)")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "persistent solver-cache directory: load on startup, snapshot periodically and on graceful drain (empty = in-memory only)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.requests < 1 {
		return o, fmt.Errorf("-requests must be at least 1")
	}
	if o.problems < 1 {
		return o, fmt.Errorf("-problems must be at least 1")
	}
	return o, nil
}

func (o options) config() serve.Config {
	cfg := serve.Config{
		Workers:       o.workers,
		QueueDepth:    o.queue,
		BatchSize:     o.batch,
		AdmitRate:     o.rate,
		AdmitBurst:    o.burst,
		RetryAttempts: o.retries,
		CacheDir:      o.cacheDir,
	}
	if o.maxevals > 0 {
		// Eval-only budgets: the default class deadlines classify outcomes by
		// the wall clock (a loaded host turns served into degraded), which is
		// right for production but wrong for reproducible runs and the
		// worker-invariance tests.
		cfg.Budgets = map[qos.Class]guard.Budget{}
		for cl := range serve.DefaultBudgets() {
			cfg.Budgets[cl] = guard.Budget{MaxEvals: o.maxevals}
		}
	}
	return cfg
}

// run executes one qosd invocation and returns the process exit code.
func run(args []string, stdout io.Writer) (int, error) {
	o, err := parseFlags(args)
	if err != nil {
		return 2, err
	}
	if o.listen != "" {
		return runServe(o, stdout)
	}
	return runWorkload(o, stdout)
}

// statsJSON is serve.Stats with string map keys so the document is stable
// and greppable.
type statsJSON struct {
	Admitted        int64                  `json:"admitted"`
	ShedRateLimit   int64                  `json:"shedRateLimit"`
	ShedQueueFull   int64                  `json:"shedQueueFull"`
	ShedDraining    int64                  `json:"shedDraining"`
	Served          int64                  `json:"served"`
	Degraded        int64                  `json:"degraded"`
	DeadlineMissed  int64                  `json:"deadlineMissed"`
	Infeasible      int64                  `json:"infeasible"`
	Canceled        int64                  `json:"canceled"`
	Uncertified     int64                  `json:"uncertified"`
	Errors          int64                  `json:"errors"`
	PanicsRecovered int64                  `json:"panicsRecovered"`
	CacheHits       int64                  `json:"cacheHits"`
	CacheMisses     int64                  `json:"cacheMisses"`
	Quarantined     int64                  `json:"quarantined"`
	CacheLoaded     int64                  `json:"cacheLoaded"`
	CacheRecert     int64                  `json:"cacheRecertified"`
	CacheRejected   int64                  `json:"cacheRejected"`
	CacheSnapshots  int64                  `json:"cacheSnapshots"`
	CachePersistErr int64                  `json:"cachePersistErrors"`
	Breakers        map[string]string      `json:"breakers"`
	BreakerOpens    int64                  `json:"breakerOpens"`
	Latency         map[string]latencyJSON `json:"latency"`
}

type latencyJSON struct {
	Count int64  `json:"count"`
	P50   string `json:"p50"`
	P99   string `json:"p99"`
}

func statsDoc(st serve.Stats) statsJSON {
	doc := statsJSON{
		Admitted: st.Admitted, ShedRateLimit: st.ShedRateLimit,
		ShedQueueFull: st.ShedQueueFull, ShedDraining: st.ShedDraining,
		Served: st.Served, Degraded: st.Degraded, DeadlineMissed: st.DeadlineMissed,
		Infeasible: st.Infeasible, Canceled: st.Canceled, Uncertified: st.Uncertified,
		Errors: st.Errors, PanicsRecovered: st.PanicsRecovered,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses, Quarantined: st.Quarantined,
		CacheLoaded: st.CacheLoaded, CacheRecert: st.CacheRecertified,
		CacheRejected: st.CacheRejected, CacheSnapshots: st.CacheSnapshots,
		CachePersistErr: st.CachePersistErrors,
		Breakers:        make(map[string]string, len(st.Breakers)), BreakerOpens: st.BreakerOpens,
		Latency: make(map[string]latencyJSON, len(st.Latency)),
	}
	for r, b := range st.Breakers {
		doc.Breakers[string(r)] = b.String()
	}
	for cl, l := range st.Latency {
		doc.Latency[cl.String()] = latencyJSON{Count: l.Count, P50: l.P50.String(), P99: l.P99.String()}
	}
	return doc
}

// healthy is the service-level pass/fail behind the exit code: the run may
// shed and degrade freely, but it must never crash a worker, serve an
// uncertified answer, or hit an internal error.
func healthy(st serve.Stats) bool {
	return st.PanicsRecovered == 0 && st.Uncertified == 0 && st.Errors == 0
}

// summary is the workload-mode JSON document.
type summary struct {
	Requests int                       `json:"requests"`
	Seed     uint64                    `json:"seed"`
	Outcomes map[string]int            `json:"outcomes"`
	ByClass  map[string]map[string]int `json:"byClass"`
	Stats    statsJSON                 `json:"stats"`
	Healthy  bool                      `json:"healthy"`
}

// runWorkload drives a seeded synthetic stream through the service.
func runWorkload(o options, stdout io.Writer) (int, error) {
	problems := make([]*qos.Problem, o.problems)
	for i := range problems {
		p, err := qos.GenerateProblem(o.embb, o.urllc, o.mmtc, o.rbs, o.seed+uint64(i))
		if err != nil {
			return 1, err
		}
		problems[i] = p
	}
	classes := []qos.Class{qos.ClassURLLC, qos.ClassEMBB, qos.ClassMMTC}
	s := serve.New(o.config())
	chans := make([]<-chan serve.Response, o.requests)
	reqClass := make([]qos.Class, o.requests)
	for i := 0; i < o.requests; i++ {
		cl := classes[i%len(classes)]
		reqClass[i] = cl
		chans[i] = s.Submit(serve.Request{
			ID:      uint64(i),
			Class:   cl,
			Problem: problems[i%len(problems)],
			Seed:    o.seed + uint64(i),
		})
	}
	outcomes := map[string]int{}
	byClass := map[string]map[string]int{}
	for i, ch := range chans {
		resp := <-ch
		key := resp.Outcome.String()
		outcomes[key]++
		cl := reqClass[i].String()
		if byClass[cl] == nil {
			byClass[cl] = map[string]int{}
		}
		byClass[cl][key]++
	}
	s.Close()
	st := s.Stats()
	doc := summary{
		Requests: o.requests,
		Seed:     o.seed,
		Outcomes: outcomes,
		ByClass:  byClass,
		Stats:    statsDoc(st),
		Healthy:  healthy(st),
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return 1, err
	}
	if !doc.Healthy {
		return 1, fmt.Errorf("unhealthy run: %d panics, %d uncertified, %d errors",
			st.PanicsRecovered, st.Uncertified, st.Errors)
	}
	return 0, nil
}

// solveRequest is the POST /solve wire format. The instance itself is
// generated server-side from the seeded dimensions, keeping the wire format
// small and every solve reproducible from the document alone.
type solveRequest struct {
	ID    uint64 `json:"id"`
	Class string `json:"class"` // "eMBB" | "URLLC" | "mMTC" (case-insensitive)
	Seed  uint64 `json:"seed"`
	EMBB  int    `json:"embb"`
	URLLC int    `json:"urllc"`
	MMTC  int    `json:"mmtc"`
	RBs   int    `json:"rbs"`
}

// solveResponse is the POST /solve reply.
type solveResponse struct {
	ID           uint64    `json:"id"`
	Outcome      string    `json:"outcome"`
	ExitCode     int       `json:"exitCode"`
	Status       string    `json:"status"`
	Rung         string    `json:"rung,omitempty"`
	Degradation  string    `json:"degradation,omitempty"`
	UserOf       []int     `json:"userOf,omitempty"`
	PowerW       []float64 `json:"powerW,omitempty"`
	TotalRateBps float64   `json:"totalRateBps,omitempty"`
	AllQoSMet    bool      `json:"allQoSMet"`
	// Report is the full per-user QoS diagnosis (rates, per-class QoS
	// tallies, budget flags) for clients that need more than the summary
	// fields above.
	Report *qos.Report `json:"report,omitempty"`
	Error  string      `json:"error,omitempty"`
}

func parseClass(name string) (qos.Class, bool) {
	switch strings.ToLower(name) {
	case "embb":
		return qos.ClassEMBB, true
	case "urllc":
		return qos.ClassURLLC, true
	case "mmtc":
		return qos.ClassMMTC, true
	}
	return 0, false
}

// newMux builds the HTTP surface over a running server.
func newMux(s *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var sr solveRequest
		if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		cl, ok := parseClass(sr.Class)
		if !ok {
			http.Error(w, fmt.Sprintf("bad request: unknown class %q", sr.Class), http.StatusBadRequest)
			return
		}
		if sr.EMBB <= 0 && sr.URLLC <= 0 && sr.MMTC <= 0 {
			sr.EMBB, sr.URLLC, sr.MMTC = 1, 1, 1
		}
		if sr.RBs <= 0 {
			sr.RBs = 6
		}
		p, err := qos.GenerateProblem(sr.EMBB, sr.URLLC, sr.MMTC, sr.RBs, sr.Seed)
		if err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp := s.Do(serve.Request{ID: sr.ID, Class: cl, Problem: p, Seed: sr.Seed, Ctx: r.Context()})
		out := solveResponse{
			ID:       resp.ID,
			Outcome:  resp.Outcome.String(),
			ExitCode: resp.Outcome.ExitCode(),
			Status:   resp.Status.String(),
			Rung:     string(resp.Rung),
		}
		if resp.Deg != nil {
			out.Degradation = resp.Deg.String()
		}
		if resp.Alloc != nil {
			out.UserOf = resp.Alloc.UserOf
			out.PowerW = resp.Alloc.PowerW
		}
		if resp.Report != nil {
			out.TotalRateBps = resp.Report.TotalRateBps
			out.AllQoSMet = resp.Report.AllQoSMet
			out.Report = resp.Report
		}
		if resp.Err != nil {
			out.Error = resp.Err.Error()
		}
		w.Header().Set("Content-Type", "application/json")
		//lint:ignore rawwire the HTTP demo front end renders the QoS report for humans; these bytes are never reloaded across the persistent-cache trust boundary (durable bytes go through internal/wire)
		if err := json.NewEncoder(w).Encode(out); err != nil {
			return // client went away mid-write; nothing to clean up
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(statsDoc(s.Stats())); err != nil {
			return
		}
	})
	return mux
}

// runServe runs the HTTP front end until SIGINT/SIGTERM, then drains: the
// listener stops first (no new admissions), queued solves finish, and the
// final stats document is printed so an operator sees what the run did.
func runServe(o options, stdout io.Writer) (int, error) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	return serveLoop(ctx, o, stdout, nil)
}

// serveLoop is runServe behind an injectable shutdown context and listener
// report: tests cancel ctx instead of raising SIGINT and read the bound
// address off ready. The finalize closure drains the server (which writes
// the final cache snapshot in -cache-dir mode) and flushes the single stats
// document; it runs exactly once no matter which path ends the loop —
// signal, listener failure, or a mid-run serve error. The previous version
// flushed only on the path it expected, so a shutdown that raced the
// listener's error could exit with the counters (and the histogram window
// they were mid-way through) never reported.
func serveLoop(ctx context.Context, o options, stdout io.Writer, ready chan<- string) (int, error) {
	s := serve.New(o.config())
	var (
		finalize sync.Once
		st       serve.Stats
		flushErr error
	)
	flush := func() {
		finalize.Do(func() {
			s.Close()
			st = s.Stats()
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			flushErr = enc.Encode(statsDoc(st))
		})
	}
	defer flush()

	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		flush()
		return 1, err
	}
	httpSrv := &http.Server{Handler: newMux(s)}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "qosd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	var serveErr error
	select {
	case <-ctx.Done():
		// The drain deadline derives from the (already fired) shutdown
		// context rather than a fabricated background one: values travel,
		// only the cancellation is detached.
		shutCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			serveErr = err
		}
	case err := <-errc:
		serveErr = err
	}
	flush()
	if flushErr != nil {
		return 1, flushErr
	}
	if serveErr != nil && serveErr != http.ErrServerClosed {
		return 1, serveErr
	}
	if !healthy(st) {
		return 1, fmt.Errorf("unhealthy run: %d panics, %d uncertified, %d errors",
			st.PanicsRecovered, st.Uncertified, st.Errors)
	}
	return 0, nil
}
