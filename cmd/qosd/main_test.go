package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/serve"
)

// runJSON runs qosd in workload mode and decodes its summary.
func runJSON(t *testing.T, args ...string) (summary, int) {
	t.Helper()
	var buf bytes.Buffer
	code, err := run(args, &buf)
	if err != nil && code == 0 {
		t.Fatalf("run(%v): %v", args, err)
	}
	var doc summary
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("run(%v) output is not JSON: %v\n%s", args, err, buf.String())
	}
	return doc, code
}

func TestWorkloadHealthySummary(t *testing.T) {
	doc, code := runJSON(t, "-requests", "12", "-seed", "3")
	if code != 0 {
		t.Fatalf("healthy workload exited %d", code)
	}
	if !doc.Healthy {
		t.Fatalf("healthy=false: %+v", doc.Stats)
	}
	total := 0
	for _, n := range doc.Outcomes {
		total += n
	}
	if total != 12 {
		t.Fatalf("outcome counts sum to %d, want 12: %v", total, doc.Outcomes)
	}
	if doc.Stats.Admitted != 12 {
		t.Fatalf("admitted %d, want 12", doc.Stats.Admitted)
	}
	for _, cl := range []string{"URLLC", "eMBB", "mMTC"} {
		if doc.ByClass[cl] == nil {
			t.Fatalf("class %s missing from byClass: %v", cl, doc.ByClass)
		}
	}
}

func TestWorkloadOverloadShedsTyped(t *testing.T) {
	doc, code := runJSON(t, "-requests", "40", "-seed", "1", "-rate", "0.25", "-burst", "1", "-workers", "2")
	if code != 0 {
		t.Fatalf("overload is a healthy condition; exited %d (stats %+v)", code, doc.Stats)
	}
	if doc.Outcomes["shed"] == 0 {
		t.Fatalf("a 4x-over-rate burst shed nothing: %v", doc.Outcomes)
	}
	if doc.Stats.Admitted+doc.Stats.ShedRateLimit+doc.Stats.ShedQueueFull != 40 {
		t.Fatalf("admission ledger does not add up: %+v", doc.Stats)
	}
	if !doc.Healthy {
		t.Fatalf("sheds flipped health: %+v", doc.Stats)
	}
}

func TestWorkloadOutcomesWorkerInvariant(t *testing.T) {
	// Eval-only budgets: with the default wall deadlines, host load decides
	// whether a borderline solve is served or degraded — allocations stay
	// bit-identical, but outcome labels would flake under a busy CI host.
	one, code1 := runJSON(t, "-requests", "18", "-seed", "7", "-workers", "1", "-maxevals", "1000000")
	eight, code8 := runJSON(t, "-requests", "18", "-seed", "7", "-workers", "8", "-maxevals", "1000000")
	if code1 != 0 || code8 != 0 {
		t.Fatalf("exit codes %d/%d, want 0/0", code1, code8)
	}
	if !reflect.DeepEqual(one.Outcomes, eight.Outcomes) {
		t.Fatalf("outcomes depend on worker count:\n1: %v\n8: %v", one.Outcomes, eight.Outcomes)
	}
	if !reflect.DeepEqual(one.ByClass, eight.ByClass) {
		t.Fatalf("per-class outcomes depend on worker count:\n1: %v\n8: %v", one.ByClass, eight.ByClass)
	}
}

func TestBadFlagsExitUsage(t *testing.T) {
	for _, args := range [][]string{
		{"-requests", "0"},
		{"-problems", "0"},
		{"-no-such-flag"},
	} {
		var buf bytes.Buffer
		code, err := run(args, &buf)
		if err == nil || code != 2 {
			t.Fatalf("run(%v) = (%d, %v), want usage error code 2", args, code, err)
		}
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s := serve.New(serve.Config{Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(newMux(s))
	defer ts.Close()

	// A well-formed solve round-trips with a typed outcome and an exit code
	// from the shared taxonomy.
	resp, err := http.Post(ts.URL+"/solve", "application/json",
		strings.NewReader(`{"id": 9, "class": "URLLC", "seed": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /solve status %d", resp.StatusCode)
	}
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.ID != 9 || sr.Outcome == "" || sr.Status == "" {
		t.Fatalf("solve response missing fields: %+v", sr)
	}
	if sr.Outcome == "served" && sr.ExitCode != 0 {
		t.Fatalf("served response with exit code %d", sr.ExitCode)
	}
	if len(sr.UserOf) == 0 {
		t.Fatalf("solve response carries no allocation: %+v", sr)
	}

	// Malformed requests are 400s, not panics.
	for _, body := range []string{`{"class": "plasma"}`, `not json`} {
		r2, err := http.Post(ts.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST /solve %q status %d, want 400", body, r2.StatusCode)
		}
	}

	// GET /solve is rejected by method.
	r3, err := http.Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve status %d, want 405", r3.StatusCode)
	}

	// Stats reflects the traffic above.
	r4, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r4.Body.Close()
	var st statsJSON
	if err := json.NewDecoder(r4.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Admitted != 1 {
		t.Fatalf("stats admitted %d, want 1 (only the well-formed solve)", st.Admitted)
	}
	if st.PanicsRecovered != 0 {
		t.Fatalf("stats = %+v, want zero panics", st)
	}
}

// TestServeLoopShutdownFlushesOnce is the drain-bug pin: canceling the
// serve loop (the test's stand-in for SIGINT) must flush exactly one final
// stats document reflecting the traffic served, and in -cache-dir mode must
// leave a loadable snapshot behind.
func TestServeLoopShutdownFlushesOnce(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	o, err := parseFlags([]string{"-listen", "127.0.0.1:0", "-workers", "2", "-cache-dir", dir})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan struct{})
	var code int
	var loopErr error
	go func() {
		defer close(done)
		code, loopErr = serveLoop(ctx, o, &buf, ready)
	}()
	addr := <-ready

	resp, err := http.Post("http://"+addr+"/solve", "application/json",
		strings.NewReader(`{"id": 1, "class": "eMBB", "seed": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	var sr solveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.Report == nil {
		t.Fatalf("solve response carries no QoS report: %+v", sr)
	}

	cancel()
	<-done
	if loopErr != nil || code != 0 {
		t.Fatalf("serveLoop = (%d, %v), want (0, nil)", code, loopErr)
	}

	// Exactly one stats document, and it saw the solve above.
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	var st statsJSON
	if err := dec.Decode(&st); err != nil {
		t.Fatalf("final stats document is not JSON: %v\n%s", err, buf.String())
	}
	if dec.More() {
		t.Fatalf("shutdown flushed more than one document:\n%s", buf.String())
	}
	if st.Admitted != 1 {
		t.Fatalf("final stats admitted %d, want 1: %+v", st.Admitted, st)
	}
	if st.CacheSnapshots < 1 || st.CachePersistErr != 0 {
		t.Fatalf("drain did not snapshot the cache cleanly: %+v", st)
	}
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.rcr"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("drain left no snapshot shard files")
	}
}

// TestServeLoopListenFailureStillFlushes: a bind error must not skip the
// stats flush either — one document, then the error.
func TestServeLoopListenFailureStillFlushes(t *testing.T) {
	o, err := parseFlags([]string{"-listen", "256.256.256.256:1"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	code, loopErr := serveLoop(context.Background(), o, &buf, nil)
	if code != 1 || loopErr == nil {
		t.Fatalf("serveLoop = (%d, %v), want (1, bind error)", code, loopErr)
	}
	var st statsJSON
	if err := json.Unmarshal(buf.Bytes(), &st); err != nil {
		t.Fatalf("no stats document on bind failure: %v\n%s", err, buf.String())
	}
}
