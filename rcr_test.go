package rcr_test

import (
	"math"
	"testing"

	"repro"
	"repro/internal/mat"
	"repro/internal/relax"
	"repro/internal/verify"
)

func TestFacadeRRA(t *testing.T) {
	p, err := rcr.GenerateRRA(1, 1, 1, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := p.SolveGreedy()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Evaluate(alloc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRateBps <= 0 {
		t.Fatal("facade RRA produced no rate")
	}
}

func TestFacadeVerification(t *testing.T) {
	net := &rcr.VerifyNetwork{Layers: []verify.AffineLayer{
		{W: [][]float64{{1, 1}, {1, -1}}, B: []float64{0, 0}},
		{W: [][]float64{{1, -1}}, B: []float64{0}},
	}}
	box := rcr.BoxAround([]float64{2.5, 0.25}, 0.25)
	spec := &rcr.VerifySpec{C: []float64{1}}
	res, err := rcr.VerifyExact(net, box, spec, rcr.ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != rcr.VerdictRobust {
		t.Fatalf("verdict %v, want robust", res.Verdict)
	}
}

func TestFacadeInertiaFit(t *testing.T) {
	fit, err := rcr.FitAdaptiveInertia(0.4, 0.9, 4, 15)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Schedule.Base <= 0 {
		t.Fatal("degenerate inertia fit")
	}
}

func TestFacadeRelaxationTools(t *testing.T) {
	// McCormick envelopes through the facade.
	under, over, err := rcr.McCormick(rcr.Interval{Lo: 0, Hi: 1}, rcr.Interval{Lo: 0, Hi: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(under) != 2 || len(over) != 2 {
		t.Fatalf("envelope counts %d/%d", len(under), len(over))
	}
	// QCQP through the facade: min -x s.t. ½·2x² - 1 <= 0 (x² <= 1) → x=1.
	p := &rcr.QCQP{
		F0: rcr.Quad{Q: []float64{-1}},
		Ineq: []rcr.Quad{
			{P: mat.Diag([]float64{2}), Q: []float64{0}, R: -1},
		},
	}
	res, err := rcr.SolveQCQP(p, []float64{0}, rcr.QCQPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 {
		t.Fatalf("QCQP optimum %v, want 1", res.X[0])
	}
	// Trace-minimization decomposition through the facade.
	v := []float64{1, 2}
	rs := mat.OuterProduct(v, v)
	rs.Add(0, 0, 0.5)
	rs.Add(1, 1, 0.5)
	dec, err := rcr.DecomposeDiagLowRank(rs, relax.TraceMinOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if dec.RankRc > 1 {
		t.Fatalf("recovered rank %d, want 1", dec.RankRc)
	}
}
